"""Shared-memory publication of compiled plans and encode tables.

The process backend's scaling problem is not compute, it is redundant
stream generation: every pool worker used to rebuild the activation
value -> stream encode tables (and, under spawn, unpickle its own copy
of the warm plan) that the parent could have produced exactly once.
This module moves the compiled artifacts into
``multiprocessing.shared_memory`` segments:

- :func:`publish_plan` pickles a payload (the
  :class:`~repro.runtime.plan.ExecutionPlan` with its warm
  :class:`~repro.simulator.layers.WeightStreamCache` contents and
  specialization gather tables, plus the pre-built activation encode
  tables) with pickle protocol 5, hoisting every contiguous numpy
  buffer out of band, and lays payload + buffers into one segment.
- :func:`attach_plan` maps the segment read-only in a worker and
  reconstructs the payload **zero-copy**: every hoisted array is a
  read-only numpy view directly onto the shared pages, so N workers
  share one physical copy of the weights and tables.  Attached encode
  tables are installed into the worker's process-global
  :data:`~repro.simulator.engine.ENCODE_CACHE` as *pinned* entries, so
  the byte-budget LRU never evicts a view whose pages cost nothing.
- :data:`SHARED_PLANS` refcounts publications keyed by
  ``(model, specialization_fingerprint, bit_offset)``: pools serving
  the same compiled model share one segment, and the segment is
  unlinked when the last owner releases it
  (:meth:`~repro.runtime.workers.WorkerPool.close` / serve registry
  eviction) or at interpreter exit.
- :func:`cleanup_orphan_segments` reclaims segments whose owning
  process died without releasing (SIGKILL, crash): segment names embed
  the owner pid, so liveness is checkable from any process.

Platform notes: POSIX shared memory lives in ``/dev/shm`` (size the
tmpfs accordingly); CPython's ``resource_tracker`` registers a segment
on *attach* as well as create, which would make the first exiting
worker unlink a segment it does not own — attachers therefore suppress
tracker registration entirely and ownership stays with the registry
(with :func:`cleanup_orphan_segments` as the crash backstop).  When shared
memory is unavailable the worker pool falls back to shipping pickled
plans per worker — the canonical, bit-identical path.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
import uuid
from dataclasses import dataclass

from ..simulator.engine import ENCODE_CACHE

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import resource_tracker, shared_memory
    _HAVE_SHM = True
except ImportError:  # pragma: no cover
    resource_tracker = shared_memory = None
    _HAVE_SHM = False

__all__ = [
    "PlanRef",
    "SharedPlanRegistry",
    "SHARED_PLANS",
    "attach_plan",
    "attached_segments",
    "build_encode_tables",
    "cleanup_orphan_segments",
    "detach_plan",
    "list_repro_segments",
    "publish_plan",
    "shm_info",
    "shm_supported",
    "unlink_segment",
]

#: Segment names are ``repro-shm-<owner pid>-<token>`` so any process
#: can tell whether a segment's owner is still alive.
SEGMENT_PREFIX = "repro-shm"

#: Out-of-band buffers are laid out on 64-byte boundaries (cache-line
#: aligned, and a multiple of every numpy itemsize in use).
_ALIGN = 64

_SUPPORTED = None


def shm_supported() -> bool:
    """Whether this platform can create + attach shared segments.

    Probed once per process with a tiny create/attach/unlink cycle;
    platforms without ``/dev/shm`` (or with the module missing) report
    ``False`` and the pool falls back to per-process plan shipping.
    """
    global _SUPPORTED
    if _SUPPORTED is not None:
        return _SUPPORTED
    if not _HAVE_SHM:
        _SUPPORTED = False
        return False
    try:
        probe = shared_memory.SharedMemory(
            name=_segment_name(), create=True, size=_ALIGN)
        probe.close()
        probe.unlink()
        _SUPPORTED = True
    except (OSError, ValueError):
        _SUPPORTED = False
    return _SUPPORTED


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:12]}"


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


# --------------------------------------------------------------------
# Publication
# --------------------------------------------------------------------

@dataclass(frozen=True)
class PlanRef:
    """Picklable reference to one published segment.

    This is what actually crosses the process boundary: a few ints and
    strings describing where in the segment the pickle payload and each
    out-of-band array buffer live.  ``key`` is the registry identity
    ``(model, specialization_fingerprint, bit_offset)``.
    """

    key: tuple
    segment: str
    owner_pid: int
    payload: tuple          # (offset, length) of the pickle stream
    buffers: tuple          # ((offset, length), ...) hoisted arrays
    total_bytes: int
    table_count: int
    table_bytes: int
    weight_bytes: int


def _pack(obj) -> tuple:
    """Pickle ``obj`` with out-of-band buffers; returns the layout.

    The buffer callback must return a *false* value: per the pickle
    docs, a truthy return tells the pickler to serialize the buffer
    in-band after all, which would silently duplicate every array into
    the payload and defeat zero-copy on attach.
    """
    buffers = []

    def hoist(buf):
        buffers.append(buf)

    payload = pickle.dumps(obj, protocol=5, buffer_callback=hoist)
    raws, spans = [], []
    offset = _aligned(len(payload))
    for buf in buffers:
        raw = buf.raw()
        raws.append(raw)
        spans.append((offset, raw.nbytes))
        offset = _aligned(offset + raw.nbytes)
    return payload, raws, spans, offset


def publish_plan(key, plan, tables: dict = None) -> PlanRef:
    """Write ``{"plan": plan, "tables": tables}`` into a new segment.

    ``tables`` maps :data:`ENCODE_CACHE` keys to pre-built encode
    tables (see :func:`build_encode_tables`); pass ``None``/empty when
    the plan is generic and workers must build their own.  Returns the
    :class:`PlanRef` a worker needs to :func:`attach_plan`.  Prefer
    :meth:`SharedPlanRegistry.acquire` for refcounted lifetime.
    """
    if not shm_supported():
        raise RuntimeError("shared memory is not supported on this host")
    tables = dict(tables or {})
    payload, raws, spans, total = _pack({"plan": plan, "tables": tables})
    with _TRACKER_LOCK:
        segment = shared_memory.SharedMemory(
            name=_segment_name(), create=True, size=max(total, _ALIGN))
    try:
        segment.buf[:len(payload)] = payload
        for (off, length), raw in zip(spans, raws):
            segment.buf[off:off + length] = raw
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    caches = getattr(plan, "_stream_caches", None)
    weight_bytes = sum(c.nbytes for c in caches()) if caches else 0
    ref = PlanRef(
        key=tuple(key), segment=segment.name, owner_pid=os.getpid(),
        payload=(0, len(payload)), buffers=tuple(spans),
        total_bytes=total, table_count=len(tables),
        table_bytes=sum(t.nbytes for t in tables.values()),
        weight_bytes=weight_bytes,
    )
    # The creating SharedMemory object is handed to the registry (or the
    # caller) for lifetime management; attach-side objects are tracked
    # separately in _ATTACHED.
    _OWNED[ref.segment] = segment
    return ref


_OWNED = {}      # segment name -> owner-side SharedMemory


def build_encode_tables(plan, max_samples: int) -> dict:
    """Materialize every activation encode table a forward pass of up
    to ``max_samples`` rows will need, via the parent's cache.

    Returns ``{cache key: table}``.  Empty for generic (unspecialized)
    plans — their chunk seeds are not enumerable from the compiled
    artifacts, so workers build tables lazily (correct, just not
    shared).
    """
    specialization = getattr(plan, "specialization", None)
    if specialization is None:
        return {}
    tables = {}
    for key in specialization.encode_table_keys(max_samples):
        scheme, bits, seed, lanes, length, offset = key
        tables[key] = ENCODE_CACHE.table(scheme, bits, seed, lanes, length,
                                         offset=offset)
    return tables


# --------------------------------------------------------------------
# Attach / detach (worker side)
# --------------------------------------------------------------------

_ATTACHED = {}   # segment name -> [SharedMemory, payload dict or None]
_ATTACH_LOCK = threading.Lock()
_ATTACH_EXIT_HOOKED = False


def attach_plan(ref: PlanRef, *, install_tables: bool = True) -> dict:
    """Map ``ref``'s segment and reconstruct its payload zero-copy.

    Every hoisted array in the returned ``{"plan": ..., "tables":
    ...}`` payload is a read-only view onto the shared pages.  With
    ``install_tables`` the encode tables are pinned into this process's
    :data:`ENCODE_CACHE`, so the plan's forward passes gather from the
    shared tables instead of rebuilding them.  Idempotent per segment.
    """
    global _ATTACH_EXIT_HOOKED
    with _ATTACH_LOCK:
        entry = _ATTACHED.get(ref.segment)
        if entry is not None and entry[1] is not None:
            payload = entry[1]
        else:
            # Either a fresh attach or a re-read after a detach that
            # failed under live views (which keeps the mapping but
            # drops the cached payload).
            segment = entry[0] if entry is not None \
                else _attach_segment(ref.segment)
            views = [segment.buf[off:off + length].toreadonly()
                     for off, length in ref.buffers]
            off, length = ref.payload
            payload = pickle.loads(bytes(segment.buf[off:off + length]),
                                   buffers=views)
            _ATTACHED[ref.segment] = [segment, payload]
        if not _ATTACH_EXIT_HOOKED:
            _ATTACH_EXIT_HOOKED = True
            atexit.register(_abandon_attachments_at_exit)
    if install_tables:
        for key, table in payload.get("tables", {}).items():
            ENCODE_CACHE.install(key, table, pinned=True)
    return payload


def detach_plan(segment_name: str) -> bool:
    """Drop this process's attachment to ``segment_name``.

    Returns whether an attachment existed.  Raises ``BufferError`` if
    arrays reconstructed from the segment are still alive *outside*
    this module — the mapping cannot be torn down under live views,
    which is exactly the safety property the refcount tests rely on.
    The attachment survives a failed detach (minus its cached payload),
    so dropping the views and calling again succeeds.
    """
    with _ATTACH_LOCK:
        entry = _ATTACHED.pop(segment_name, None)
        if entry is None:
            return False
        segment = entry[0]
        # Drop this module's own payload reference before closing: the
        # cache itself must not count as a live view.
        entry[1] = None
        del entry
        try:
            segment.close()
        except BufferError:
            # close() released the managed view before the mmap close
            # failed; rebuild it so the retained attachment stays
            # usable for re-reads and a later retry.
            segment._buf = memoryview(segment._mmap)
            _ATTACHED[segment_name] = [segment, None]
            raise
    return True


def _abandon_attachments_at_exit() -> None:
    """Leak attached mappings to the kernel at interpreter exit.

    Worker processes hold plan views for their whole lifetime, so
    ``SharedMemory.__del__``'s ``close()`` would raise (ignored but
    noisy) ``BufferError`` during shutdown.  The process is dying and
    the kernel reclaims the mappings regardless; dropping the private
    handles makes ``close()`` a no-op.  Segment *lifetime* is owner-side
    state and is untouched by this.
    """
    with _ATTACH_LOCK:
        for entry in _ATTACHED.values():
            entry[0]._buf = None
            entry[0]._mmap = None
        _ATTACHED.clear()


def attached_segments() -> tuple:
    """Segment names this process is currently attached to."""
    with _ATTACH_LOCK:
        return tuple(_ATTACHED)


def _attach_segment(name: str):
    """Open an existing segment *without* resource-tracker registration.

    CPython < 3.13 registers a segment with the resource tracker on
    attach as well as create.  Pool workers share the parent's tracker
    (its registration set has set semantics), so an attacher either
    cancelling the owner's registration via ``unregister`` or leaving a
    duplicate behind both end badly — the clean behavior is for
    attachers to never touch the tracker at all: ownership stays with
    the publishing process, and :func:`cleanup_orphan_segments` is the
    crash backstop.  (Python 3.13+ exposes this as ``track=False``.)
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    with _TRACKER_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


#: Serializes attach-side register suppression against owner-side
#: segment creation, so a concurrent publish can never lose its
#: tracker registration to the monkeypatch window (pre-3.13 only).
_TRACKER_LOCK = threading.Lock()


# --------------------------------------------------------------------
# Refcounted registry (owner side)
# --------------------------------------------------------------------

class SharedPlanRegistry:
    """Refcounted owner of published segments.

    ``acquire`` returns the existing publication for a key (bumping its
    refcount) or builds and publishes a new one; ``release`` drops a
    reference and unlinks the segment when the last holder is gone.
    One instance per process (:data:`SHARED_PLANS`); worker pools and
    the serve registry acquire/release through it, and an ``atexit``
    hook unlinks anything still live so a clean shutdown never leaks
    ``/dev/shm`` entries.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._pubs = {}        # key -> [PlanRef, refcount]
        # Forked workers inherit this registry (and its atexit hook)
        # by copy; only the process that created a registry may unlink
        # through it, or the first exiting worker would tear down
        # segments its siblings still map.
        self._pid = os.getpid()

    def acquire(self, key, build) -> PlanRef:
        """The publication for ``key``; ``build()`` must return the
        ``(plan, tables)`` payload parts and runs only on first
        acquire (under the registry lock, so concurrent acquirers of
        one key publish exactly once)."""
        key = tuple(key)
        with self._lock:
            entry = self._pubs.get(key)
            if entry is not None:
                entry[1] += 1
                return entry[0]
            # Publish opportunistically reclaims segments of crashed
            # owners before adding a new one.
            cleanup_orphan_segments()
            plan, tables = build()
            ref = publish_plan(key, plan, tables)
            self._pubs[key] = [ref, 1]
            return ref

    def release(self, key) -> bool:
        """Drop one reference; unlink on the last.  Returns whether the
        segment was unlinked."""
        key = tuple(key)
        with self._lock:
            entry = self._pubs.get(key)
            if entry is None:
                return False
            entry[1] -= 1
            if entry[1] > 0:
                return False
            ref = entry[0]
            del self._pubs[key]
        unlink_segment(ref.segment)
        return True

    def refcount(self, key) -> int:
        with self._lock:
            entry = self._pubs.get(tuple(key))
            return entry[1] if entry is not None else 0

    def stats(self) -> dict:
        """JSON-ready accounting of live publications."""
        with self._lock:
            pubs = [
                {"model": ref.key[0],
                 "fingerprint": ref.key[1],
                 "bit_offset": ref.key[2],
                 "segment": ref.segment,
                 "bytes": ref.total_bytes,
                 "tables": ref.table_count,
                 "table_bytes": ref.table_bytes,
                 "weight_bytes": ref.weight_bytes,
                 "refcount": count}
                for ref, count in self._pubs.values()
            ]
        return {
            "supported": shm_supported(),
            "segments": len(pubs),
            "bytes": sum(p["bytes"] for p in pubs),
            "publications": pubs,
        }

    def release_all(self) -> None:
        """Unlink every live publication (interpreter shutdown)."""
        if os.getpid() != self._pid:
            return
        with self._lock:
            refs = [entry[0] for entry in self._pubs.values()]
            self._pubs.clear()
        for ref in refs:
            unlink_segment(ref.segment)

    def __len__(self) -> int:
        with self._lock:
            return len(self._pubs)


#: The process-wide publication registry.
SHARED_PLANS = SharedPlanRegistry()
atexit.register(SHARED_PLANS.release_all)


def unlink_segment(name: str) -> None:
    """Close the owner mapping and remove the segment from the system.

    Safe to call for already-unlinked segments (crash recovery may race
    an orderly release).
    """
    segment = _OWNED.pop(name, None)
    if segment is None:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - lost the race
        pass
    segment.close()


# --------------------------------------------------------------------
# Orphan cleanup
# --------------------------------------------------------------------

def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's pid
        return True
    return True


def list_repro_segments() -> list:
    """Every ``repro-shm-*`` segment currently in ``/dev/shm``."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-POSIX
        return []
    return sorted(fname for fname in os.listdir(shm_dir)
                  if fname.startswith(SEGMENT_PREFIX + "-"))


def cleanup_orphan_segments() -> list:
    """Unlink segments whose owning process no longer exists.

    The owner pid is embedded in the segment name, so a freshly started
    (or long-lived) process can reclaim what a SIGKILL'd one left
    behind.  Called opportunistically on every publish and from
    registry shutdown; also part of the public API for operational
    tooling.  Returns the reclaimed segment names.
    """
    removed = []
    if not _HAVE_SHM:
        return removed
    for fname in list_repro_segments():
        parts = fname.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        if _pid_alive(pid):
            continue
        try:
            segment = shared_memory.SharedMemory(name=fname)
        except FileNotFoundError:
            continue
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        segment.close()
        removed.append(fname)
    return removed


def shm_info() -> dict:
    """Operational summary: publications owned + segments attached."""
    info = SHARED_PLANS.stats()
    info["attached"] = list(attached_segments())
    return info
