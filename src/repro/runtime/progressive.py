"""Confidence-gated progressive (anytime) inference policy.

The simulator's resumable evaluation
(:mod:`repro.simulator.progressive`) makes stream length a *runtime*
knob: start short, look at the logits, and pay for more clocks only
when the decision is not yet trustworthy.  This module is the policy on
top — when to stop and when to extend:

- **Margin gate.**  A classification is accepted at base phase length
  ``n`` when the top-1/top-2 logit margin exceeds
  :func:`repro.core.errors.decision_margin_bound` (worst-case
  ``z / sqrt(n)`` stream-noise RMS on a logit difference).  For a batch,
  the *minimum* margin over the batch must clear the bound — one
  undecided sample keeps the whole request extending, preserving the
  single-batch execution shape.
- **RMS floor.**  ``target_rms`` translates into a minimum length via
  the Sec. II-A error model (worst-case value), so a caller can demand
  representational precision independent of the decision margin.
- **Growth schedule.**  Extensions grow geometrically (default 2x)
  toward ``max_phase_length``; popcount resumability means each round
  costs only the *new* window (plus rows invalidated by upstream value
  changes), so the total work of an early exit at length ``l`` is close
  to a one-shot run at ``l``, not the sum of the schedule.

A request that reaches ``max_phase_length`` returns those logits
regardless of margin, so the policy only ever *shortens* requests whose
decision the gate judged already stable — it never degrades a request
below what the fixed-length run at the maximum would produce for the
undecided ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

import numpy as np

from ..core.errors import (decision_margin_bound, length_for_rms_bipolar,
                           length_for_rms_unipolar)

__all__ = ["ProgressivePolicy", "ProgressiveOutcome", "top2_margin",
           "run_progressive"]


@dataclass(frozen=True)
class ProgressivePolicy:
    """When to stop extending a resumable evaluation.

    ``max_phase_length=None`` resolves to the executing config's
    reference ``phase_length`` — "never worse than the fixed-length
    run, often cheaper".  Setting ``margin_z=None`` disables the margin
    gate (the run extends straight to the maximum, useful for measuring
    resumption overhead); ``target_rms=None`` disables the RMS floor.
    """

    start_phase_length: int = 16
    max_phase_length: int = None
    growth: float = 2.0
    margin_z: float = 2.0
    target_rms: float = None

    def __post_init__(self):
        if self.start_phase_length < 1:
            raise ValueError("start_phase_length must be positive")
        if self.max_phase_length is not None \
                and self.max_phase_length < self.start_phase_length:
            raise ValueError(
                "max_phase_length must be >= start_phase_length")
        if self.growth <= 1.0:
            raise ValueError("growth must exceed 1")
        if self.margin_z is not None and self.margin_z <= 0:
            raise ValueError("margin_z must be positive (or None)")
        if self.target_rms is not None and self.target_rms <= 0:
            raise ValueError("target_rms must be positive (or None)")

    @classmethod
    def from_request(cls, spec, default: "ProgressivePolicy" = None
                     ) -> "ProgressivePolicy":
        """Normalize a wire-format policy: ``True`` means the default
        policy; a mapping overrides individual fields (unknown keys
        rejected).  ``False``/``None`` returns ``None``."""
        if spec is None or spec is False:
            return None
        base = default if default is not None else cls()
        if spec is True:
            return base
        if not isinstance(spec, dict):
            raise ValueError(
                "progressive must be a boolean or an object of policy "
                f"fields, got {type(spec).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"unknown progressive policy fields: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        merged = {f.name: getattr(base, f.name) for f in fields(cls)}
        merged.update(spec)
        return cls(**merged)

    def resolved_max(self, reference_length: int) -> int:
        return (self.max_phase_length if self.max_phase_length is not None
                else reference_length)

    def rms_floor(self, representation: str) -> int:
        """Minimum base phase length satisfying ``target_rms`` at the
        worst-case representable value (Sec. II-A error model)."""
        if self.target_rms is None:
            return 1
        if representation == "bipolar":
            # Worst case v = 0 at total length 2n.
            total = int(length_for_rms_bipolar(0.0, self.target_rms))
            return (total + 1) // 2
        return int(length_for_rms_unipolar(0.5, self.target_rms))


def top2_margin(logits: np.ndarray) -> np.ndarray:
    """Per-sample top-1 minus top-2 logit, ``(..., C) -> (...)``."""
    logits = np.asarray(logits)
    if logits.shape[-1] < 2:
        return np.full(logits.shape[:-1], np.inf)
    part = np.partition(logits, logits.shape[-1] - 2, axis=-1)
    return part[..., -1] - part[..., -2]


@dataclass
class ProgressiveOutcome:
    """What one progressive request settled on."""

    logits: np.ndarray
    #: Final base phase length the request was decided at.
    phase_length: int
    #: Extension rounds taken after the starting length.
    extensions: int
    #: True when the margin gate accepted before ``max_phase_length``.
    early_exit: bool
    #: Minimum top-1/top-2 margin over the batch at the final length.
    margin: float
    #: The gate's bound at the final length (0 with the gate disabled).
    margin_bound: float
    #: Base lengths evaluated, in order.
    history: list


def run_progressive(start_fn, policy: ProgressivePolicy, *,
                    reference_length: int,
                    representation: str = "split-unipolar"
                    ) -> ProgressiveOutcome:
    """Drive one resumable evaluation under ``policy``.

    ``start_fn(phase_length)`` begins the evaluation and returns a
    :class:`~repro.simulator.progressive.ProgressiveResult`; the loop
    extends it geometrically until the margin gate and RMS floor are
    both satisfied or the maximum length is reached.
    """
    max_length = policy.resolved_max(reference_length)
    floor = min(policy.rms_floor(representation), max_length)
    result = start_fn(min(policy.start_phase_length, max_length))
    early_exit = False
    while True:
        length = result.phase_length
        margin = float(np.min(top2_margin(result.logits))) \
            if result.logits.size else math.inf
        bound = 0.0
        if policy.margin_z is not None:
            bound = float(decision_margin_bound(
                length, z=policy.margin_z, representation=representation))
        if length >= max_length:
            break
        # A disabled gate can never accept; with both gates off the run
        # extends straight to the maximum.
        accepted = policy.margin_z is not None or policy.target_rms is not None
        if policy.margin_z is not None and margin < bound:
            accepted = False
        if policy.target_rms is not None and length < floor:
            accepted = False
        if accepted:
            early_exit = True
            break
        result.extend(min(max_length,
                          max(length + 1, int(length * policy.growth))))
    return ProgressiveOutcome(
        logits=result.logits, phase_length=result.phase_length,
        extensions=result.extensions, early_exit=early_exit,
        margin=margin, margin_bound=bound, history=list(result.history),
    )
