"""Configuration for the functional SC simulator."""

from __future__ import annotations

import operator
from dataclasses import dataclass

__all__ = ["SCConfig"]


@dataclass
class SCConfig:
    """Stochastic-computing simulation parameters.

    Attributes
    ----------
    phase_length:
        Bits per split-unipolar phase.  The paper counts both phases, so
        its "256-long streams" correspond to ``phase_length=128``.
    bits:
        SNG comparator resolution (8 everywhere in the paper).
    scheme:
        RNG scheme: ``"lfsr"`` (hardware-faithful), ``"random"``, ``"vdc"``.
    accumulator:
        ``"or"`` (ACOUSTIC), ``"mux"`` or ``"apc"`` baselines.
    computation_skipping:
        Fuse average pooling into the preceding convolution by shortening
        compute passes (paper Sec. II-C).  When off, pooling averages the
        already-converted binary activations instead.
    seed:
        Base seed; the simulator re-seeds every layer and phase, modelling
        ACOUSTIC's per-layer stream regeneration.
    """

    phase_length: int = 128
    bits: int = 8
    scheme: str = "lfsr"
    accumulator: str = "or"
    computation_skipping: bool = True
    seed: int = 1
    #: ``"split-unipolar"`` (ACOUSTIC) or ``"bipolar"`` (prior-work
    #: XNOR/MUX datapath; layer outputs carry the 1/fan-in MUX scaling).
    representation: str = "split-unipolar"
    #: Optional per-layer phase-length overrides, ``{layer_index: bits}``.
    #: Because every layer converts to binary, stream lengths are a free
    #: per-layer knob — the basis of the mixed-stream-precision
    #: allocation study.
    layer_phase_lengths: dict = None
    #: Kernel implementation: ``"word"`` (uint64 bitplanes, production),
    #: ``"byte"`` (uint8 reference path), or ``None`` to resolve via the
    #: ``REPRO_SC_KERNEL`` environment variable (default ``"word"``).
    #: Both kernels return bit-identical counts.
    kernel: str = None
    #: Working-set budget (KiB) for one channel-blocked intermediate of
    #: the word kernel; ~L2/L3-sized keeps the broadcast AND/OR tiles
    #: cache-resident.
    block_kib: int = 4096
    #: Use the global activation value -> packed-stream table cache
    #: (bit-identical either way; purely a speed knob).
    encode_cache: bool = True

    def __post_init__(self):
        if self.phase_length < 1:
            raise ValueError("phase_length must be positive")
        if self.accumulator not in ("or", "mux", "apc"):
            raise ValueError(f"unknown accumulator {self.accumulator!r}")
        if self.representation not in ("split-unipolar", "bipolar"):
            raise ValueError(
                f"unknown representation {self.representation!r}"
            )
        if self.kernel is not None and self.kernel not in ("word", "byte"):
            raise ValueError(f"unknown kernel {self.kernel!r}")
        if self.block_kib < 1:
            raise ValueError("block_kib must be positive")
        if self.layer_phase_lengths is not None:
            self.layer_phase_lengths = self._normalized_overrides(
                self.layer_phase_lengths)

    @staticmethod
    def _normalized_overrides(overrides) -> dict:
        """Validate and copy ``layer_phase_lengths``.

        Keys must be layer indices and values positive phase lengths,
        both real ``int``s (``bool`` is rejected explicitly — it passes
        an ``isinstance`` check but is never a meaningful index or
        length).  The mapping is copied so later caller-side mutation
        cannot desynchronize a config from plans or caches keyed on it.
        """
        try:
            items = list(overrides.items())
        except AttributeError:
            raise TypeError(
                "layer_phase_lengths must be a mapping of "
                "{layer_index: phase_length}, got "
                f"{type(overrides).__name__}"
            ) from None
        normalized = {}
        for key, value in items:
            if isinstance(key, bool) or isinstance(value, bool):
                raise TypeError(
                    "layer_phase_lengths entries must be ints, got a "
                    f"bool in {key!r}: {value!r}"
                )
            try:
                key = operator.index(key)
            except TypeError:
                raise TypeError(
                    f"layer_phase_lengths key {key!r} is not an int "
                    "layer index"
                ) from None
            try:
                value = operator.index(value)
            except TypeError:
                raise TypeError(
                    f"layer_phase_lengths[{key}] = {value!r} is not an "
                    "int phase length"
                ) from None
            if key < 0:
                raise ValueError(
                    f"layer_phase_lengths key {key} is negative"
                )
            if value < 1:
                raise ValueError(
                    f"layer_phase_lengths[{key}] = {value} must be "
                    "positive"
                )
            normalized[key] = value
        return normalized

    @property
    def total_length(self) -> int:
        """Stream length in the paper's accounting (2 temporal phases)."""
        return 2 * self.phase_length

    def phase_length_for(self, layer_index: int) -> int:
        """Per-phase stream length for one layer (override-aware)."""
        if self.layer_phase_lengths:
            return self.layer_phase_lengths.get(layer_index,
                                                self.phase_length)
        return self.phase_length

    def kernel_kwargs(self) -> dict:
        """Kernel-selection kwargs for the engine matmuls."""
        return {"kernel": self.kernel,
                "block_bytes": self.block_kib * 1024,
                "encode_cache": self.encode_cache}

    def layer_seed(self, layer_index: int, phase: int) -> int:
        """Per-layer, per-phase seed — streams are regenerated at every
        layer boundary, which is what removes pooling-induced correlation."""
        return self.seed + 1_000_003 * (layer_index + 1) + 524_287 * phase
