"""Evaluation metrics for classification pipelines.

Shared by the fixed-point and stochastic evaluation paths: confusion
matrices, per-class accuracy and top-k accuracy, computed from logits so
both :class:`~repro.simulator.network.SCNetwork` and
:class:`~repro.simulator.fixedpoint.FixedPointNetwork` can feed them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["confusion_matrix", "per_class_accuracy", "top_k_accuracy",
           "evaluate_classifier"]


def confusion_matrix(predictions: np.ndarray, targets: np.ndarray,
                     num_classes: int = None) -> np.ndarray:
    """``matrix[true, predicted]`` counts."""
    predictions = np.asarray(predictions, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must align")
    if num_classes is None:
        num_classes = int(max(predictions.max(initial=0),
                              targets.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (targets, predictions), 1)
    return matrix


def per_class_accuracy(matrix: np.ndarray) -> np.ndarray:
    """Recall per class; NaN for classes absent from the targets."""
    totals = matrix.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)


def top_k_accuracy(logits: np.ndarray, targets: np.ndarray,
                   k: int = 5) -> float:
    """Fraction of samples whose target is among the k largest logits."""
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    k = min(k, logits.shape[-1])
    top = np.argpartition(-logits, k - 1, axis=-1)[:, :k]
    return float((top == targets[:, None]).any(axis=1).mean())


def evaluate_classifier(model, x: np.ndarray, y: np.ndarray,
                        batch_size: int = 32, k: int = 3) -> dict:
    """Full metric set for any model exposing ``forward(x)``.

    Returns ``{"accuracy", "top_k", "confusion", "per_class"}``.
    """
    logits = []
    for start in range(0, x.shape[0], batch_size):
        logits.append(np.asarray(model.forward(x[start:start + batch_size])))
    logits = np.concatenate(logits)
    predictions = np.argmax(logits, axis=-1)
    matrix = confusion_matrix(predictions, y)
    return {
        "accuracy": float((predictions == y).mean()),
        "top_k": top_k_accuracy(logits, y, k=k),
        "confusion": matrix,
        "per_class": per_class_accuracy(matrix),
    }
