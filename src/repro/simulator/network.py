"""SC network container and conversion from trained models."""

from __future__ import annotations

import numpy as np

from ..training import layers as tlayers
from ..training.network import Sequential
from .config import SCConfig
from .layers import (SCAvgPool, SCConv2d, SCFlatten, SCLinear, SCReLU,
                     SCResidual)

__all__ = ["SCNetwork"]


class SCNetwork:
    """A stochastic-computing CNN evaluated bitstream-exactly.

    Build one directly from simulator layers, or convert a trained
    :class:`~repro.training.network.Sequential` with
    :meth:`from_trained`.
    """

    def __init__(self, layers, config: SCConfig = None):
        self.layers = list(layers)
        self.config = config if config is not None else SCConfig()

    @classmethod
    def from_trained(cls, network: Sequential, config: SCConfig = None
                     ) -> "SCNetwork":
        """Convert a trained network into its SC-simulated counterpart.

        Recognized training layers: ``SplitOrConv2d`` (optionally followed
        by ``AvgPool2d``, which is fused for computation skipping),
        ``SplitOrLinear``, ``ReLU``, ``AvgPool2d``, ``Flatten``.  Plain
        ``Conv2d``/``Linear`` weights are accepted too (their bias must be
        absent — the SC datapath has no bias path).
        """
        config = config if config is not None else SCConfig()
        return cls(_convert_layers(list(network.layers)), config)

    def forward(self, x: np.ndarray,
                return_intermediates: bool = False):
        """Run bitstream-exact inference; ``x`` is ``(N, C, H, W)`` in
        [0, 1].  Returns the final counter values (logits); with
        ``return_intermediates=True`` also returns the per-layer outputs
        (the converted binary activations the scratchpads would hold)."""
        x = np.asarray(x, dtype=np.float64)
        intermediates = []
        for index, layer in enumerate(self.layers):
            x = layer.forward(x, self.config, index)
            if return_intermediates:
                intermediates.append(x)
        if return_intermediates:
            return x, intermediates
        return x

    def predict(self, x: np.ndarray, batch_size: int = 8) -> np.ndarray:
        x = np.asarray(x)
        if x.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        preds = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start:start + batch_size])
            preds.append(np.argmax(logits, axis=-1))
        return np.concatenate(preds)

    def accuracy(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int = 8) -> float:
        return float((self.predict(x, batch_size) == y).mean())


def _convert_layers(source) -> list:
    """Map training layers to SC layers, fusing conv + avg-pool pairs."""
    sc_layers = []
    i = 0
    while i < len(source):
        layer = source[i]
        if isinstance(layer, (tlayers.SplitOrConv2d, tlayers.Conv2d)):
            _reject_bias(layer)
            pool_size = 1
            # Fuse an immediately following average pool (the hardware
            # counter accumulates the window before conversion).
            if i + 1 < len(source) and isinstance(
                source[i + 1], tlayers.AvgPool2d
            ):
                pool_size = source[i + 1].kernel_size
                i += 1
            sc_layers.append(
                SCConv2d(layer.weight, stride=layer.stride,
                         padding=layer.padding, pool_size=pool_size)
            )
        elif isinstance(layer, (tlayers.SplitOrLinear, tlayers.Linear)):
            _reject_bias(layer)
            sc_layers.append(SCLinear(layer.weight))
        elif isinstance(layer, tlayers.ReLU):
            sc_layers.append(SCReLU())
        elif isinstance(layer, tlayers.AvgPool2d):
            sc_layers.append(SCAvgPool(layer.kernel_size))
        elif isinstance(layer, tlayers.Flatten):
            sc_layers.append(SCFlatten())
        elif isinstance(layer, tlayers.Residual):
            sc_layers.append(SCResidual(_convert_layers(list(layer.body))))
        else:
            raise TypeError(
                f"no SC equivalent for layer {type(layer).__name__}"
            )
        i += 1
    return sc_layers


def _reject_bias(layer) -> None:
    bias = getattr(layer, "bias", None)
    if bias is not None and np.any(bias != 0):
        raise ValueError(
            "SC conversion requires bias-free layers (the ACOUSTIC "
            "datapath has no additive-constant path); retrain with "
            "bias=False"
        )
