"""SC network container and lowering from the graph IR.

:meth:`SCNetwork.from_graph` lowers a :class:`~repro.ir.NetworkGraph`
(with parameters) to simulator layers by running the canonical
:mod:`repro.ir.passes` pipeline (exact-pool semantics) and materializing
one SC layer per node of the resulting fused graph — conv + avg-pool
fusion for computation skipping happens in the pipeline, not here.
:meth:`SCNetwork.from_trained` is a thin adapter: it captures the
trained model's graph via :func:`repro.training.network.graph_of` and
lowers that.

The network keeps the *fused* SC-level graph (one node per SC layer) on
``self.graph``; the runtime's :class:`~repro.runtime.plan.ExecutionPlan`
walks it for shapes and validation instead of re-deriving layer
metadata.
"""

from __future__ import annotations

import warnings

import numpy as np

from .. import ir, obs
from ..training.network import Sequential, graph_of
from .config import SCConfig
from .layers import (SCAvgPool, SCConv2d, SCFlatten, SCLinear, SCReLU,
                     SCResidual)

__all__ = ["SCNetwork", "sc_graph_of"]

#: Simulator layer class -> IR-layer span kind (trace span names are
#: ``layer:<index>:<kind>``, matching the fused graph's node kinds).
_SPAN_KINDS = {SCConv2d: "conv", SCLinear: "linear", SCReLU: "relu",
               SCAvgPool: "avgpool", SCFlatten: "flatten",
               SCResidual: "residual"}


def _span_kind(layer) -> str:
    kind = _SPAN_KINDS.get(type(layer))
    if kind is not None:
        return kind
    for cls, kind in _SPAN_KINDS.items():   # subclassed simulator layers
        if isinstance(layer, cls):
            return kind
    return "custom"


class SCNetwork:
    """A stochastic-computing CNN evaluated bitstream-exactly.

    Build one directly from simulator layers, lower a
    :class:`~repro.ir.NetworkGraph` with :meth:`from_graph`, or convert
    a trained :class:`~repro.training.network.Sequential` with
    :meth:`from_trained`.
    """

    def __init__(self, layers, config: SCConfig = None, graph=None):
        self.layers = list(layers)
        self.config = config if config is not None else SCConfig()
        #: Fused SC-level :class:`~repro.ir.NetworkGraph`, 1:1 with
        #: ``layers`` (``None`` for hand-assembled stacks until
        #: :meth:`to_graph` reconstructs it).
        self.graph = graph

    @classmethod
    def from_graph(cls, graph, config: SCConfig = None) -> "SCNetwork":
        """Lower an IR graph to its SC-simulated counterpart.

        Runs the :mod:`repro.ir.passes` pipeline with exact-pool
        (simulator) semantics — an avg-pool node directly after a conv
        is fused into it for computation skipping, and graphs with a
        known input shape are shape-legalized up front — then builds
        one SC layer per fused node.  Conv/linear nodes must carry a
        ``weight`` parameter and be bias-free: the ACOUSTIC datapath
        has no additive-constant path, so a biased layer raises
        :class:`ValueError` outright.
        """
        config = config if config is not None else SCConfig()
        fused = ir.passes.lower(graph, exact_pool=True).graph
        return cls(_layers_from_fused(fused.nodes), config, graph=fused)

    @classmethod
    def from_trained(cls, network: Sequential, config: SCConfig = None
                     ) -> "SCNetwork":
        """Convert a trained network into its SC-simulated counterpart.

        Thin adapter over :meth:`from_graph`: captures the model's
        graph (parameters by reference) and lowers it.  Plain
        ``Conv2d``/``Linear`` weights are accepted; layers constructed
        with a bias are rejected with :class:`ValueError`.
        """
        return cls.from_graph(graph_of(network), config)

    def to_graph(self):
        """The fused SC-level graph (reconstructed if not attached)."""
        if self.graph is None:
            self.graph = ir.NetworkGraph(
                "sc_network", None, _nodes_from_sc_layers(self.layers))
        return self.graph

    def forward(self, x: np.ndarray,
                return_intermediates: bool = False):
        """Run bitstream-exact inference; ``x`` is ``(N, C, H, W)`` in
        [0, 1].  Returns the final counter values (logits); with
        ``return_intermediates=True`` also returns the per-layer outputs
        (the converted binary activations the scratchpads would hold).

        With :mod:`repro.obs` tracing enabled, each layer runs inside a
        ``layer:<index>:<kind>`` span carrying a ``samples`` counter —
        the IR-layer attribution ``python -m repro profile`` reports.
        Disabled, the only per-layer cost is one boolean check."""
        x = np.asarray(x, dtype=np.float64)
        traced = obs.enabled()
        names = self._layer_span_names() if traced else None
        intermediates = []
        for index, layer in enumerate(self.layers):
            if traced:
                with obs.span(names[index], category="layer") as span:
                    span.add_counter("samples", x.shape[0])
                    x = layer.forward(x, self.config, index)
            else:
                x = layer.forward(x, self.config, index)
            if return_intermediates:
                intermediates.append(x)
        if return_intermediates:
            return x, intermediates
        return x

    def forward_partial(self, x: np.ndarray, phase_length: int = None):
        """Begin a resumable (anytime) evaluation of ``x``.

        Returns a :class:`~repro.simulator.progressive.ProgressiveResult`
        holding the logits at base ``phase_length`` (default: the
        config's); ``result.extend(longer)`` grows the evaluation
        without recomputing the already-counted prefix, bit-identical
        to a one-shot :meth:`forward` at the final length.  Requires a
        prefix-stable RNG scheme (``lfsr``/``vdc``) and the word
        kernel — see :class:`ProgressiveExecutor`.
        """
        from .progressive import ProgressiveExecutor
        return ProgressiveExecutor(self).start(x, phase_length)

    def _layer_span_names(self) -> list:
        """``layer:<index>:<kind>`` trace names, built once per network."""
        names = getattr(self, "_span_names", None)
        if names is None:
            names = [f"layer:{i}:{_span_kind(layer)}"
                     for i, layer in enumerate(self.layers)]
            self._span_names = names
        return names

    def predict(self, x: np.ndarray, batch_size: int = 8) -> np.ndarray:
        x = np.asarray(x)
        if x.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        preds = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start:start + batch_size])
            preds.append(np.argmax(logits, axis=-1))
        return np.concatenate(preds)

    def accuracy(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int = 8) -> float:
        return float((self.predict(x, batch_size) == y).mean())


def sc_graph_of(network: "SCNetwork"):
    """The fused SC-level graph of a network (module-level spelling of
    :meth:`SCNetwork.to_graph` for adapter call sites)."""
    return network.to_graph()


def _reject_bias(node, what: str) -> None:
    if node.bias or "bias" in node.params:
        raise ValueError(
            f"cannot lower {what} layer with a bias to the SC simulator: "
            "the ACOUSTIC datapath has no additive-constant (bias) path; "
            "rebuild or retrain the layer with bias=False"
        )


def _node_weight(node, what: str) -> np.ndarray:
    weight = node.params.get("weight")
    if weight is None:
        raise ValueError(
            f"{what} node carries no weights — lower a trained graph "
            "(graph_of(model) / Sequential.from_graph) to the simulator"
        )
    return weight


def _layers_from_fused(nodes) -> list:
    """One SC layer per node of a pipeline-fused graph.

    No fusion happens here: conv nodes already carry their pooling
    window in ``pool`` (see :mod:`repro.ir.passes`), so the mapping is
    a straight 1:1 walk enforcing the simulator's legality rules
    (weights present, bias-free, legal channel groups, identity skips).
    """
    sc_layers = []
    for node in nodes:
        if node.kind == "conv":
            _reject_bias(node, "conv")
            groups = ir.passes.check_conv_groups(node)
            sc_layers.append(
                SCConv2d(_node_weight(node, "conv"), stride=node.stride,
                         padding=node.padding, pool_size=node.pool,
                         groups=groups)
            )
        elif node.kind == "linear":
            _reject_bias(node, "linear")
            sc_layers.append(SCLinear(_node_weight(node, "linear")))
        elif node.kind == "relu":
            sc_layers.append(SCReLU())
        elif node.kind == "pool" and node.pool_kind == "avg":
            sc_layers.append(SCAvgPool(node.kernel_hw[0]))
        elif node.kind == "flatten":
            sc_layers.append(SCFlatten())
        elif node.kind == "residual":
            if node.shortcut:
                raise TypeError(
                    "projection shortcuts exist only in the performance "
                    "models; the SC simulator supports identity skips only"
                )
            sc_layers.append(SCResidual(_layers_from_fused(node.body)))
        else:
            raise TypeError(
                f"no SC equivalent for {node.pool_kind + ' ' if node.kind == 'pool' else ''}"
                f"{node.kind} layers"
            )
    return sc_layers


def _lower_nodes(source) -> tuple:
    """Deprecated pre-pipeline entry point.

    Kept for external scripts that called the historical fusing walk
    directly; the fusion now happens in :mod:`repro.ir.passes` and this
    shim merely runs the pipeline.  Returns ``(sc_layers, fused_nodes)``
    with the two lists aligned 1:1, exactly as before.
    """
    warnings.warn(
        "repro.simulator.network._lower_nodes is deprecated: lowering "
        "now runs through the repro.ir.passes pipeline — use "
        "SCNetwork.from_graph (or ir.passes.lower) instead",
        DeprecationWarning, stacklevel=2,
    )
    fused = ir.passes.lower(
        ir.NetworkGraph("legacy_lowering", None, list(source))).graph
    return _layers_from_fused(fused.nodes), fused.nodes


def _nodes_from_sc_layers(layers) -> list:
    """Reconstruct the fused SC-level graph from bare SC layer objects
    (for networks assembled directly from simulator layers)."""
    nodes = []
    for layer in layers:
        if isinstance(layer, SCConv2d):
            c_out, c_in_g, kh, kw = layer.weight.shape
            nodes.append(ir.conv(
                c_in_g * layer.groups, c_out, kh if kh == kw else (kh, kw),
                stride=layer.stride, padding=layer.padding,
                pool=layer.pool_size, groups=layer.groups,
                weight=layer.weight))
        elif isinstance(layer, SCLinear):
            out_f, in_f = layer.weight.shape
            nodes.append(ir.linear(in_f, out_f, weight=layer.weight))
        elif isinstance(layer, SCReLU):
            nodes.append(ir.relu())
        elif isinstance(layer, SCAvgPool):
            nodes.append(ir.avgpool(layer.pool_size))
        elif isinstance(layer, SCFlatten):
            nodes.append(ir.flatten())
        elif isinstance(layer, SCResidual):
            nodes.append(ir.residual(_nodes_from_sc_layers(layer.body)))
        else:
            raise TypeError(
                f"no IR node for SC layer {type(layer).__name__}"
            )
    return nodes
