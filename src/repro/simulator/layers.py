"""Functional-simulator layers (bitstream-exact SC inference).

Each layer consumes and produces binary *values* — exactly like the
hardware, which converts streams back to fixed-point at every layer
boundary (activation counters) and regenerates fresh streams for the next
layer.  Inside a layer, computation is bitstream-exact via
:func:`repro.simulator.engine.split_or_matmul_counts`.

Note the hardware operation order: pooling is accumulated by the output
*counters*, i.e. **before** the ReLU that happens at conversion.  SC
network definitions therefore place pooling between the convolution and
its ReLU.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from ..core.sng import quantize_probability
from ..training.im2col import expand_grouped_weight, im2col
from .config import SCConfig
from .engine import (bipolar_mux_matmul_counts, encode_bipolar_weight_stream,
                     encode_split_weight_streams, split_or_matmul_counts)

__all__ = ["SCConv2d", "SCLinear", "SCReLU", "SCAvgPool", "SCFlatten",
           "SCResidual", "WeightStreamCache", "decode_split_conv_counts",
           "decode_bipolar_conv_counts", "decode_split_linear_counts",
           "decode_bipolar_linear_counts"]


# -- counter decoding --------------------------------------------------
#
# The count -> value conversion (counter readout, fused pooling, MUX
# rescale) is shared by three executors of the same math: the generic
# layer forwards below, the specialized kernel plans
# (repro.runtime.specialize), and the resumable progressive evaluator
# (repro.simulator.progressive).  One implementation keeps them
# bit-identical by construction.


def decode_split_conv_counts(counts: np.ndarray, layer: "SCConv2d",
                             config: SCConfig, length: int, n: int,
                             oh: int, ow: int, fan_in: int) -> np.ndarray:
    """Split-unipolar conv counter readout: ``(n*oh*ow, c_out)`` raw
    matmul counts at per-pass ``length`` -> NCHW activation values,
    including the fused-pooling counter semantics."""
    c_out = counts.shape[-1]
    counts = counts.reshape(n, oh, ow, c_out)
    if layer.pool_size > 1:
        p = layer.pool_size
        if oh % p or ow % p:
            raise ValueError(
                f"pool window {p} must tile conv output {oh}x{ow}"
            )
        if config.computation_skipping:
            # Counters accumulate the window across shortened passes.
            windows = counts.reshape(n, oh // p, p, ow // p, p, c_out)
            values = windows.sum(axis=(2, 4)) / (layer.pool_area * length)
        else:
            # Full-length passes followed by stream-level scaled
            # addition; at the counter this is the window average.
            values = counts / length
            values = values.reshape(n, oh // p, p, ow // p, p, c_out)
            values = values.mean(axis=(2, 4))
    else:
        values = counts / length
    out = values.transpose(0, 3, 1, 2)
    if config.accumulator == "mux":
        out = out * fan_in  # undo the 1/k MUX scaling
    return out


def decode_bipolar_conv_counts(counts: np.ndarray, layer: "SCConv2d",
                               length: int, n: int, oh: int,
                               ow: int) -> np.ndarray:
    """Bipolar conv counter readout (XNOR/MUX datapath): MUX ones-counts
    to NCHW values, pooling on converted activations."""
    c_out = counts.shape[-1]
    values = 2.0 * counts.reshape(n, oh, ow, c_out) / length - 1.0
    if layer.pool_size > 1:
        p = layer.pool_size
        values = values.reshape(n, oh // p, p, ow // p, p, c_out)
        values = values.mean(axis=(2, 4))
    return values.transpose(0, 3, 1, 2)


def decode_split_linear_counts(counts: np.ndarray, config: SCConfig,
                               length: int, fan_in: int) -> np.ndarray:
    """Split-unipolar linear counter readout."""
    out = counts / length
    if config.accumulator == "mux":
        out = out * fan_in
    return out


def decode_bipolar_linear_counts(counts: np.ndarray,
                                 length: int) -> np.ndarray:
    """Bipolar linear counter readout."""
    return 2.0 * counts / length - 1.0


class WeightStreamCache:
    """Per-layer cache of packed weight bitstreams.

    Weight streams are a pure function of the weight tensor and the
    encoding parameters, so a layer whose weights are fixed can encode
    them once and replay the packed arrays on every forward pass.
    Entries are keyed by ``(representation, length, bits, scheme, seed,
    offset)`` and evicted LRU beyond ``max_entries`` (each distinct SC
    configuration contributes one entry; fixed-length inference uses
    exactly one, a progressive schedule one per extension segment —
    hence the default room for a full geometric schedule alongside the
    from-zero streams).

    ``hits``/``misses`` counters feed the runtime's encode-cache hit-rate
    metric.  The cache is safe for concurrent readers (thread-backed
    worker pools share layer objects); a race at worst encodes the same
    constant streams twice.
    """

    def __init__(self, max_entries: int = 16):
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries = OrderedDict()
        self._lock = threading.Lock()

    def get_or_encode(self, key, encode):
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
        value = encode()  # encode outside the lock: it is the slow part
        with self._lock:
            self.misses += 1
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Total packed-stream bytes held (what a shared-memory
        publication of this cache ships once instead of per worker)."""
        with self._lock:
            return sum(self._entry_nbytes(v) for v in self._entries.values())

    @staticmethod
    def _entry_nbytes(value) -> int:
        """Entries are arrays or (nested) tuples of arrays — the split
        representation stores ``((part, packed), ...)`` per phase."""
        if isinstance(value, np.ndarray):
            return value.nbytes
        if isinstance(value, (tuple, list)):
            return sum(WeightStreamCache._entry_nbytes(v) for v in value)
        return 0

    # Locks are not picklable; process-backed worker pools ship layers
    # (cache included, so forked/spawned workers start warm) and each
    # worker recreates its own lock.
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()


def _cached_weight_streams(cache: WeightStreamCache, weights_2d: np.ndarray,
                           *, representation: str, length: int, bits: int,
                           scheme: str, seed: int, offset: int = 0):
    """Fetch (or encode and memoize) one layer's packed weight streams."""
    key = (representation, length, bits, scheme, seed, offset)
    if representation == "bipolar":
        return cache.get_or_encode(key, lambda: encode_bipolar_weight_stream(
            weights_2d, length=length, bits=bits, scheme=scheme, seed=seed,
            offset=offset))
    return cache.get_or_encode(key, lambda: encode_split_weight_streams(
        weights_2d, length=length, bits=bits, scheme=scheme, seed=seed,
        offset=offset))


class SCConv2d:
    """Stochastic convolution with optional fused average pooling.

    ``pool_size > 1`` enables computation skipping: every compute pass is
    shortened by the pooling area and the output counters accumulate the
    window without resetting (paper Sec. II-C), cutting the conv work by
    ``pool_size**2``.

    ``groups > 1`` lowers a grouped (``groups == in_channels``:
    depthwise) convolution.  The compact weight is stored as
    ``(C_out, C_in/groups, kh, kw)``; every kernel call site consumes
    :attr:`weight_2d`, the dense block-diagonal ``(C_out, C_in*kh*kw)``
    expansion, so grouped forward passes are bit-identical to a dense
    conv with block-diagonal weights for every accumulator and
    representation.  OR/APC/MUX accumulation never mixes groups because
    the cross-group weight lanes are exact zeros (and the engine skips
    those all-zero operand lanes at the product stage).
    """

    def __init__(self, weight: np.ndarray, stride: int = 1, padding: int = 0,
                 pool_size: int = 1, groups: int = 1):
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 4:
            raise ValueError("conv weight must be (C_out, C_in/g, kh, kw)")
        if np.abs(weight).max() > 1:
            raise ValueError("SC weights must lie in [-1, 1]")
        if groups < 1 or weight.shape[0] % groups:
            raise ValueError(
                f"groups={groups} must divide out_channels={weight.shape[0]}")
        self.weight = weight
        self.stride = stride
        self.padding = padding
        self.pool_size = pool_size
        self.groups = groups
        self.stream_cache = WeightStreamCache()
        self._weight_2d = None

    @property
    def in_channels(self) -> int:
        """Input channels of the convolution (all groups)."""
        return self.weight.shape[1] * self.groups

    @property
    def weight_2d(self) -> np.ndarray:
        """Dense block-diagonal ``(C_out, C_in*kh*kw)`` weight plane.

        The single weight view every executor (generic kernels,
        specialized plans, progressive segments) encodes and streams;
        cached because SC weights are fixed after training.
        """
        if self.groups == 1:
            # A plain reshape view — never cached, so pickled layers
            # (process-pool shipping) carry the weight bytes only once.
            return self.weight.reshape(self.weight.shape[0], -1)
        if self._weight_2d is None:
            self._weight_2d = expand_grouped_weight(self.weight, self.groups)
        return self._weight_2d

    @property
    def pool_area(self) -> int:
        return self.pool_size * self.pool_size

    def packed_weight_streams(self, *, representation: str, length: int,
                              bits: int, scheme: str, seed: int,
                              offset: int = 0):
        """Cached packed weight streams for one encoding configuration.

        ``offset`` selects the clock window ``[offset, offset + length)``
        — the continuation segment streams of a resumable evaluation.
        """
        return _cached_weight_streams(
            self.stream_cache, self.weight_2d,
            representation=representation, length=length, bits=bits,
            scheme=scheme, seed=seed, offset=offset,
        )

    def phase_length(self, config: SCConfig, layer_index: int = None) -> int:
        """Per-pass stream length after computation skipping."""
        base = config.phase_length_for(layer_index) if layer_index \
            is not None else config.phase_length
        if self.pool_size > 1 and config.computation_skipping:
            return max(1, base // self.pool_area)
        return base

    def forward(self, x: np.ndarray, config: SCConfig,
                layer_index: int) -> np.ndarray:
        kh, kw = self.weight.shape[2], self.weight.shape[3]
        cols = im2col(x, kh, kw, self.stride, self.padding)
        n, oh, ow, k = cols.shape
        if config.representation == "bipolar":
            return self._forward_bipolar(cols, config, layer_index)
        length = self.phase_length(config, layer_index)
        seed = config.layer_seed(layer_index, 0)
        counts = split_or_matmul_counts(
            quantize_probability(cols.reshape(-1, k), config.bits),
            self.weight_2d,
            length=length,
            bits=config.bits,
            scheme=config.scheme,
            seed=seed,
            accumulator=config.accumulator,
            weight_streams=self.packed_weight_streams(
                representation="split-unipolar", length=length,
                bits=config.bits, scheme=config.scheme, seed=seed,
            ),
            **config.kernel_kwargs(),
        )
        return decode_split_conv_counts(counts, self, config, length,
                                        n, oh, ow, k)

    def _forward_bipolar(self, cols: np.ndarray, config: SCConfig,
                         layer_index: int) -> np.ndarray:
        """Prior-work datapath: bipolar XNOR products, MUX accumulation.

        The layer output is the MUX-scaled mean product ``sum/k``.  ReLU
        networks are positively scale-equivariant, so the per-layer 1/k
        factor only rescales logits — argmax is preserved at infinite
        stream length; what short streams destroy is *precision*, which
        is the ablation's point.
        """
        n, oh, ow, k = cols.shape
        length = config.total_length  # single representation, no phases
        seed = config.layer_seed(layer_index, 0)
        counts = bipolar_mux_matmul_counts(
            quantize_probability(cols.reshape(-1, k), config.bits),
            self.weight_2d,
            length=length,
            bits=config.bits,
            scheme=config.scheme,
            seed=seed,
            weight_stream=self.packed_weight_streams(
                representation="bipolar", length=length, bits=config.bits,
                scheme=config.scheme, seed=seed,
            ),
            **config.kernel_kwargs(),
        )
        return decode_bipolar_conv_counts(counts, self, length, n, oh, ow)


class SCLinear:
    """Stochastic fully-connected layer."""

    def __init__(self, weight: np.ndarray):
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ValueError("linear weight must be (out, in)")
        if np.abs(weight).max() > 1:
            raise ValueError("SC weights must lie in [-1, 1]")
        self.weight = weight
        self.stream_cache = WeightStreamCache()

    def packed_weight_streams(self, *, representation: str, length: int,
                              bits: int, scheme: str, seed: int,
                              offset: int = 0):
        """Cached packed weight streams for one encoding configuration
        (``offset`` as in :meth:`SCConv2d.packed_weight_streams`)."""
        return _cached_weight_streams(
            self.stream_cache, self.weight,
            representation=representation, length=length, bits=bits,
            scheme=scheme, seed=seed, offset=offset,
        )

    def forward(self, x: np.ndarray, config: SCConfig,
                layer_index: int) -> np.ndarray:
        seed = config.layer_seed(layer_index, 0)
        if config.representation == "bipolar":
            counts = bipolar_mux_matmul_counts(
                quantize_probability(x, config.bits),
                self.weight,
                length=config.total_length,
                bits=config.bits,
                scheme=config.scheme,
                seed=seed,
                weight_stream=self.packed_weight_streams(
                    representation="bipolar", length=config.total_length,
                    bits=config.bits, scheme=config.scheme, seed=seed,
                ),
                **config.kernel_kwargs(),
            )
            return decode_bipolar_linear_counts(counts, config.total_length)
        phase_length = config.phase_length_for(layer_index)
        counts = split_or_matmul_counts(
            quantize_probability(x, config.bits),
            self.weight,
            length=phase_length,
            bits=config.bits,
            scheme=config.scheme,
            seed=seed,
            accumulator=config.accumulator,
            weight_streams=self.packed_weight_streams(
                representation="split-unipolar", length=phase_length,
                bits=config.bits, scheme=config.scheme, seed=seed,
            ),
            **config.kernel_kwargs(),
        )
        return decode_split_linear_counts(counts, config, phase_length,
                                          x.shape[-1])


class SCReLU:
    """Counter-side ReLU plus requantization to the activation grid.

    The counter value is fixed-point binary; ReLU clamps the sign and the
    result is stored back to the activation scratchpad at ``bits``
    precision — the value the next layer's SNGs will encode.
    """

    def forward(self, x: np.ndarray, config: SCConfig,
                layer_index: int) -> np.ndarray:
        return quantize_probability(np.clip(x, 0.0, 1.0), config.bits)


class SCAvgPool:
    """Standalone average pooling on converted (binary) activations.

    Present for network descriptions where pooling is not fused into the
    preceding convolution (e.g. pooling after a non-conv layer).
    """

    def __init__(self, pool_size: int):
        self.pool_size = pool_size

    def forward(self, x: np.ndarray, config: SCConfig,
                layer_index: int) -> np.ndarray:
        p = self.pool_size
        n, c, h, w = x.shape
        if h % p or w % p:
            raise ValueError(f"pool window {p} must tile input {h}x{w}")
        return x.reshape(n, c, h // p, p, w // p, p).mean(axis=(3, 5))


class SCFlatten:
    def forward(self, x: np.ndarray, config: SCConfig,
                layer_index: int) -> np.ndarray:
        return x.reshape(x.shape[0], -1)


class SCResidual:
    """Residual block on converted activations.

    The skip addition happens in the fixed-point binary domain (counter
    outputs), so it is exact; saturation to the representable activation
    range is handled by the following :class:`SCReLU`.
    """

    def __init__(self, body):
        self.body = list(body)

    def forward(self, x: np.ndarray, config: SCConfig,
                layer_index: int) -> np.ndarray:
        out = x
        for offset, layer in enumerate(self.body):
            # Distinct sub-indices keep per-layer stream regeneration.
            out = layer.forward(out, config, layer_index * 131 + offset + 1)
        if out.shape != x.shape:
            raise ValueError(
                f"residual body changed shape {x.shape} -> {out.shape}"
            )
        return x + out
