"""Optional numba-accelerated inner loops for the planned SC kernels.

The specialized execution path (:mod:`repro.runtime.specialize`) can
swap the OR accumulator's AND/OR-reduce/popcount inner loop for a fused
numba-compiled version.  Everything here is strictly optional:

- numba is an *extra* (``pip install .[jit]``), never a requirement —
  when it is missing, :func:`or_popcount_loop` returns ``None`` and the
  pure-numpy kernels (the canonical, bit-exactness-verified path) run
  unchanged;
- ``REPRO_SC_JIT=0`` pins the pure-numpy path even with numba present;
- the first resolution runs a self-check: the compiled loop is compared
  against the numpy reference on a seeded case and is *disabled for the
  process* on any mismatch or compile error.  A broken numba install
  can cost speed, never bits.

The fused loop computes, for time-major word operands ``aw: (P, W, K)``
and ``ww: (C, W, K)`` (both ``uint64``), the ``(P, C)`` popcount of the
fan-in OR of the lane-wise ANDs — one output element per (position,
channel) without materializing the ``(P, C, W, K)`` product tensor the
numpy path broadcasts.
"""

from __future__ import annotations

import os

import numpy as np

from .engine import popcount_words

__all__ = ["jit_enabled", "numba_available", "or_popcount_loop", "status"]

#: Resolved once per process: {"fn": callable | None, "reason": str}.
_STATE = {"resolved": False, "fn": None, "reason": "unresolved"}


def jit_enabled() -> bool:
    """``REPRO_SC_JIT`` gate (default on; numba still has to exist)."""
    value = os.environ.get("REPRO_SC_JIT", "1").strip().lower()
    return value not in ("0", "false", "off", "no", "")


def numba_available() -> bool:
    """Whether numba imports at all (it is an optional extra)."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def _reference_or_popcount(aw: np.ndarray, ww: np.ndarray) -> np.ndarray:
    """The numpy inner loop the jitted one must reproduce bit for bit."""
    prods = aw[:, None, :, :] & ww[None, :, :, :]
    acc = np.bitwise_or.reduce(prods, axis=-1)
    return popcount_words(acc, axis=-1)


def _build_or_popcount():
    """Compile the fused AND/OR/popcount loop (raises if numba can't)."""
    import numba

    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    one = np.uint64(1)
    two = np.uint64(2)
    four = np.uint64(4)
    s56 = np.uint64(56)

    @numba.njit(cache=False, nogil=True)
    def _or_popcount(aw, ww):  # pragma: no cover - needs numba
        n_pos, n_words, n_lanes = aw.shape
        n_chan = ww.shape[0]
        out = np.zeros((n_pos, n_chan), dtype=np.int64)
        for i in range(n_pos):
            for c in range(n_chan):
                total = 0
                for w in range(n_words):
                    acc = np.uint64(0)
                    for k in range(n_lanes):
                        acc |= aw[i, w, k] & ww[c, w, k]
                    # SWAR popcount of one 64-bit word.
                    acc -= (acc >> one) & m1
                    acc = (acc & m2) + ((acc >> two) & m2)
                    acc = (acc + (acc >> four)) & m4
                    total += int((acc * h01) >> s56)
                out[i, c] = total
        return out

    return _or_popcount


def _self_check(fn) -> bool:
    """Seeded equivalence check against the numpy reference."""
    rng = np.random.default_rng(0x5EED)
    aw = rng.integers(0, 2**63, size=(5, 3, 17), dtype=np.uint64)
    ww = rng.integers(0, 2**63, size=(4, 3, 17), dtype=np.uint64)
    # Include an all-ones word so the popcount's high bits are exercised.
    aw[0, 0, :] = np.uint64(0xFFFFFFFFFFFFFFFF)
    ww[0, 0, :] = np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.array_equal(fn(aw, ww), _reference_or_popcount(aw, ww))


def or_popcount_loop():
    """The fused OR-accumulator inner loop, or ``None``.

    ``None`` means "use the pure-numpy path" — because numba is not
    installed, ``REPRO_SC_JIT`` disables it, compilation failed, or the
    self-check found a bit mismatch.  The resolution (and its reason)
    is cached for the process; see :func:`status`.
    """
    if _STATE["resolved"]:
        return _STATE["fn"]
    _STATE["resolved"] = True
    if not jit_enabled():
        _STATE["reason"] = "disabled via REPRO_SC_JIT"
        return None
    if not numba_available():
        _STATE["reason"] = "numba not installed (optional extra: .[jit])"
        return None
    try:
        fn = _build_or_popcount()
        if not _self_check(fn):
            _STATE["reason"] = "self-check mismatch vs numpy — disabled"
            return None
    except Exception as exc:  # pragma: no cover - needs broken numba
        _STATE["reason"] = f"compile failed: {exc!r} — disabled"
        return None
    _STATE["fn"] = fn
    _STATE["reason"] = "active"
    return fn


def status() -> dict:
    """Introspection for ``describe``/metrics: how jit resolved."""
    or_popcount_loop()
    return {
        "env_enabled": jit_enabled(),
        "numba_available": numba_available(),
        "active": _STATE["fn"] is not None,
        "reason": _STATE["reason"],
    }


def _reset_for_tests() -> None:
    """Clear the cached resolution (tests flip the env gate)."""
    _STATE["resolved"] = False
    _STATE["fn"] = None
    _STATE["reason"] = "unresolved"
