"""8-bit fixed-point reference inference.

The paper's Table II compares SC accuracy against "8-bit Fixed Pt"
hardware.  This module evaluates a trained network with weights and
activations quantized to 8 bits but otherwise ideal arithmetic — the
infinite-stream-length limit of the stochastic datapath.
"""

from __future__ import annotations

import numpy as np

from ..training.network import Sequential
from ..training.quantize import quantize_symmetric, quantize_unsigned

__all__ = ["FixedPointNetwork"]


class FixedPointNetwork:
    """Quantized (weights + activations) evaluation wrapper.

    Weights are quantized once at construction; activations are
    requantized after every layer, mirroring the scratchpad storage
    format of an 8-bit accelerator.
    """

    def __init__(self, network: Sequential, bits: int = 8):
        self.network = network
        self.bits = bits
        self._quantized_state = {}
        for i, layer in enumerate(network.layers):
            params = layer.params()
            if "weight" in params:
                self._quantized_state[i] = quantize_symmetric(
                    params["weight"], bits
                )

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = quantize_unsigned(np.asarray(x, dtype=np.float64), self.bits)
        for i, layer in enumerate(self.network.layers):
            original = None
            if i in self._quantized_state:
                original = layer.params()["weight"].copy()
                layer.params()["weight"][...] = self._quantized_state[i]
            try:
                x = layer.forward(x, training=False)
            finally:
                if original is not None:
                    layer.params()["weight"][...] = original
            # Requantize non-negative activations (post-ReLU / pooling);
            # leave signed intermediate values untouched.
            if x.size and x.min() >= 0 and x.max() <= 1:
                x = quantize_unsigned(x, self.bits)
        return x

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        x = np.asarray(x)
        if x.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        preds = []
        for start in range(0, x.shape[0], batch_size):
            logits = self.forward(x[start:start + batch_size])
            preds.append(np.argmax(logits, axis=-1))
        return np.concatenate(preds)

    def accuracy(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int = 256) -> float:
        return float((self.predict(x, batch_size) == y).mean())
