"""Resumable (anytime) SC evaluation built on popcount additivity.

A stochastic-computing inference at phase length ``n`` is a popcount
over ``n`` clocks of deterministic bitstreams.  With a *prefix-stable*
RNG scheme — the threshold a lane compares against at absolute clock
``t`` depends only on ``(seed, t)``, never on the window being generated
(``lfsr`` and ``vdc``; see :func:`repro.core.rng.prefix_stable_scheme`)
— the counts over the disjoint clock windows ``[0, a)`` and ``[a, a+b)``
sum to exactly the one-shot count over ``[0, a+b)``.  That additivity
makes partial evaluations *resumable*: run short, keep the per-layer
counts, and extend by another window without recomputing the prefix.

The catch is the layer boundary.  The hardware (and the simulator)
converts counts to fixed-point binary between layers, so extending an
upstream layer changes some of a downstream layer's *inputs* — and a
changed input invalidates that row's counts entirely.  The executor
therefore diffs each layer's quantized input matrix against the previous
round: unchanged rows add only the new window's counts
(:meth:`~repro.simulator.engine.SplitMatmulPlan.execute_rows` on a
``bit_offset`` segment plan), changed rows recompute their full window.
Early layers see few changed rows (the input image never changes), so
the work of an extension concentrates where the network actually moved.

The result is **bit-identical** to a one-shot run at the final length:
``network.forward_partial(x, 16).extend(64).logits`` equals
``forward(x)`` under ``replace(config, phase_length=64)`` exactly, for
every accumulator and both representations.  ``layer_phase_lengths``
overrides stay pinned (an override layer does not grow with the base
length — exactly as a one-shot run would treat it).

This module stays inside the simulator layer: it reuses the engine's
segment plans and the shared counter decoders, and accepts the runtime's
gather tables and jit loop duck-typed, without importing them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace

import numpy as np

from ..core.rng import prefix_stable_scheme
from ..core.sng import quantize_probability
from ..training.im2col import im2col
from . import jit as scjit
from .config import SCConfig
from .engine import BipolarMatmulPlan, SplitMatmulPlan, default_kernel
from .layers import (SCConv2d, SCLinear, SCResidual,
                     decode_bipolar_conv_counts, decode_bipolar_linear_counts,
                     decode_split_conv_counts, decode_split_linear_counts)

__all__ = ["ProgressiveExecutor", "ProgressiveResult"]

#: Segment matmul plans kept per executor (LRU).  A geometric schedule
#: touches a handful of windows per layer; the cap only matters for
#: pathological many-tiny-extension patterns.
_MAX_SEGMENT_PLANS = 128


class ProgressiveResult:
    """One resumable evaluation: logits now, more precision on demand.

    Returned by :meth:`ProgressiveExecutor.start` (or
    :meth:`SCNetwork.forward_partial`).  ``logits`` holds the counter
    readout at the current base ``phase_length``; :meth:`extend` grows
    the evaluation to a longer length in place — reusing every popcount
    bit the shorter run already paid for — and returns ``self``.
    """

    def __init__(self, executor: "ProgressiveExecutor", x: np.ndarray):
        self._executor = executor
        self._x = x
        self.logits = None
        #: Current base phase length (per-layer lengths derive from it
        #: exactly as in a one-shot run: pooling-fused convs divide by
        #: the pool area, bipolar doubles, overrides pin).
        self.phase_length = 0
        #: Number of :meth:`extend` calls that grew the evaluation.
        self.extensions = 0
        #: Base lengths evaluated so far, in order.
        self.history = []
        self._states = {}      # layer key -> {"acts", "counts", "length"}

    def extend(self, phase_length: int) -> "ProgressiveResult":
        """Grow the evaluation to base ``phase_length`` (monotone).

        Bit-identical to a one-shot run at ``phase_length``; extending
        to the current length is a no-op.  Returns ``self``.
        """
        phase_length = int(phase_length)
        if phase_length < 1:
            raise ValueError("phase_length must be positive")
        if phase_length < self.phase_length:
            raise ValueError(
                f"cannot shrink a resumable evaluation: at "
                f"{self.phase_length}, asked for {phase_length}"
            )
        if phase_length == self.phase_length:
            return self
        first = self.phase_length == 0
        self.logits = self._executor._evaluate(self._x, phase_length,
                                               self._states)
        self.phase_length = phase_length
        self.history.append(phase_length)
        if not first:
            self.extensions += 1
        return self


class ProgressiveExecutor:
    """Builds and extends resumable evaluations for one network.

    Parameters
    ----------
    network:
        The :class:`~repro.simulator.network.SCNetwork` to evaluate.
    config:
        Optional :class:`SCConfig` override (defaults to the
        network's).  ``phase_length`` acts as the *reference* length;
        each evaluation picks its own base length per round.
    gathers:
        Optional ``{layer_key: gather}`` of precompiled im2col gathers
        (duck-typed: ``take``/``out_hw``/``fan_in`` — the runtime's
        :class:`~repro.runtime.specialize.GatherPlan`).  Layers without
        one fall back to :func:`~repro.training.im2col.im2col`; both
        produce bit-identical patch matrices.
    jit_or:
        Optional fused OR/popcount inner loop (defaults to the
        process-wide :func:`repro.simulator.jit.or_popcount_loop`).

    Raises
    ------
    ValueError
        If the config's RNG scheme is not prefix-stable (``"random"``
        draws its thresholds statefully, so a longer window rewrites
        the prefix and nothing can be resumed), or if the byte
        reference kernel is pinned (segments run through the word-path
        plan classes).
    """

    def __init__(self, network, config: SCConfig = None, *,
                 gathers: dict = None, jit_or=None):
        self.network = network
        self.config = config if config is not None else network.config
        if not prefix_stable_scheme(self.config.scheme):
            raise ValueError(
                f"progressive evaluation needs a prefix-stable RNG "
                f"scheme; {self.config.scheme!r} regenerates its prefix "
                "at every length — use 'lfsr' or 'vdc'"
            )
        kernel = self.config.kernel if self.config.kernel \
            else default_kernel()
        if kernel != "word":
            raise ValueError(
                "progressive evaluation runs on the word kernel's "
                f"matmul plans; config pins kernel={kernel!r}"
            )
        self._gathers = dict(gathers) if gathers else {}
        self._jit_or = jit_or if jit_or is not None \
            else scjit.or_popcount_loop()
        self._plans = OrderedDict()    # (key, start, length) -> plan
        self._plans_lock = threading.Lock()

    def start(self, x: np.ndarray,
              phase_length: int = None) -> ProgressiveResult:
        """Begin a resumable evaluation of ``x`` at ``phase_length``
        (default: the config's reference length)."""
        if phase_length is None:
            phase_length = self.config.phase_length
        x = np.asarray(x, dtype=np.float64)
        return ProgressiveResult(self, x).extend(phase_length)

    # -- evaluation walk ----------------------------------------------

    def _evaluate(self, x, base_length: int, states: dict) -> np.ndarray:
        """One full forward walk at base ``base_length``, resuming from
        (and updating) ``states``."""
        config_l = replace(self.config, phase_length=base_length)
        for index, layer in enumerate(self.network.layers):
            x = self._forward_layer(layer, x, index, states, config_l)
        return x

    def _forward_layer(self, layer, x, key: int, states, config_l):
        # Exact types only: a subclass may override forward (fault
        # injection, experiments) and must keep that behavior — it is
        # re-run from scratch each round instead of resumed.
        if type(layer) is SCConv2d:
            return self._conv_forward(layer, x, key, states, config_l)
        if type(layer) is SCLinear:
            return self._linear_forward(layer, x, key, states, config_l)
        if type(layer) is SCResidual:
            out = x
            for offset, sub in enumerate(layer.body):
                # SCResidual.forward's sub-index derivation, so body
                # layers resume under the seeds they run with.
                out = self._forward_layer(sub, out, key * 131 + offset + 1,
                                          states, config_l)
            if out.shape != x.shape:
                raise ValueError(
                    f"residual body changed shape {x.shape} -> {out.shape}"
                )
            return x + out
        return layer.forward(x, config_l, key)

    def _conv_forward(self, layer, x, key, states, config_l):
        gather = self._gathers.get(key)
        if gather is not None:
            n = x.shape[0]
            oh, ow = gather.out_hw
            fan_in = gather.fan_in
            cols = gather.take(quantize_probability(x, config_l.bits))
        else:
            kh, kw = layer.weight.shape[2], layer.weight.shape[3]
            raw = im2col(x, kh, kw, layer.stride, layer.padding)
            n, oh, ow, fan_in = raw.shape
            cols = quantize_probability(raw.reshape(-1, fan_in),
                                        config_l.bits)
        if config_l.representation == "bipolar":
            length = config_l.total_length
        else:
            length = layer.phase_length(config_l, key)
        counts = self._matmul_counts(layer, key, cols, length, states,
                                     config_l)
        if config_l.representation == "bipolar":
            return decode_bipolar_conv_counts(counts, layer, length,
                                              n, oh, ow)
        return decode_split_conv_counts(counts, layer, config_l, length,
                                        n, oh, ow, fan_in)

    def _linear_forward(self, layer, x, key, states, config_l):
        values = quantize_probability(x, config_l.bits)
        if config_l.representation == "bipolar":
            length = config_l.total_length
        else:
            length = config_l.phase_length_for(key)
        counts = self._matmul_counts(layer, key, values, length, states,
                                     config_l)
        if config_l.representation == "bipolar":
            return decode_bipolar_linear_counts(counts, length)
        return decode_split_linear_counts(counts, config_l, length,
                                          x.shape[-1])

    # -- resumable counts ---------------------------------------------

    def _matmul_counts(self, layer, key, acts, length, states, config_l):
        """Counter values for one layer at window ``[0, length)``,
        resuming the layer's previous window where its inputs held."""
        state = states.get(key)
        if state is None:
            counts = self._execute(layer, key, 0, length, acts, None)
            states[key] = {"acts": acts, "counts": counts,
                           "length": length}
            return counts
        old_acts = state["acts"]
        old_length = state["length"]
        counts = state["counts"]
        if acts.shape != old_acts.shape or length < old_length:
            # A shape change cannot happen on a fixed input; a shorter
            # window only via a pinned per-layer override, which keeps
            # length == old_length.  Recompute defensively.
            counts = self._execute(layer, key, 0, length, acts, None)
        else:
            moved = np.any(acts != old_acts, axis=1)
            changed = np.flatnonzero(moved)
            if length > old_length:
                kept = np.flatnonzero(~moved)
                if kept.size:
                    counts[kept] += self._execute(
                        layer, key, old_length, length - old_length,
                        acts, kept)
            if changed.size:
                counts[changed] = self._execute(layer, key, 0, length,
                                                acts, changed)
        state["acts"] = acts
        state["counts"] = counts
        state["length"] = length
        return counts

    def _execute(self, layer, key, start, length, acts, rows):
        """Run one clock-window matmul over all rows (``rows=None``) or
        a row subset of ``acts``."""
        plan = self._segment_plan(layer, key, start, length)
        split = isinstance(plan, SplitMatmulPlan)
        if rows is None:
            if split:
                return plan.execute(acts, jit_or=self._jit_or)
            return plan.execute(acts)
        if rows.size == acts.shape[0]:
            if split:
                return plan.execute(acts, jit_or=self._jit_or)
            return plan.execute(acts)
        if split:
            return plan.execute_rows(acts[rows], rows, jit_or=self._jit_or)
        return plan.execute_rows(acts[rows], rows)

    def _segment_plan(self, layer, key, start: int, length: int):
        """Matmul plan for layer ``key``'s clock window
        ``[start, start + length)``, LRU-cached per executor (weight
        streams additionally persist in the layer's own cache)."""
        cache_key = (key, start, length)
        with self._plans_lock:
            plan = self._plans.get(cache_key)
            if plan is not None:
                self._plans.move_to_end(cache_key)
                return plan
        config = self.config
        seed = config.layer_seed(key, 0)
        # Conv layers expose the dense block-diagonal plane (grouped
        # convs included); linear weights are already 2-D.
        weights_2d = getattr(layer, "weight_2d", layer.weight)
        channel_groups = getattr(layer, "groups", 1)
        block_bytes = config.block_kib * 1024
        if config.representation == "bipolar":
            stream = layer.packed_weight_streams(
                representation="bipolar", length=length, bits=config.bits,
                scheme=config.scheme, seed=seed, offset=start)
            plan = BipolarMatmulPlan(
                weights_2d, length=length, bits=config.bits,
                scheme=config.scheme, seed=seed, block_bytes=block_bytes,
                weight_stream=stream, encode_cache=config.encode_cache,
                bit_offset=start, channel_groups=channel_groups)
        else:
            streams = layer.packed_weight_streams(
                representation="split-unipolar", length=length,
                bits=config.bits, scheme=config.scheme, seed=seed,
                offset=start)
            plan = SplitMatmulPlan(
                weights_2d, length=length, bits=config.bits,
                scheme=config.scheme, seed=seed,
                accumulator=config.accumulator, block_bytes=block_bytes,
                weight_streams=streams, encode_cache=config.encode_cache,
                bit_offset=start, channel_groups=channel_groups)
        with self._plans_lock:
            self._plans[cache_key] = plan
            while len(self._plans) > _MAX_SEGMENT_PLANS:
                self._plans.popitem(last=False)
        return plan
