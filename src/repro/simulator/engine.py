"""Vectorized bitstream kernels for the functional simulator.

The hot path of SC simulation is: encode operands to bitstreams, AND the
pairs, reduce across the fan-in, and count.  The paper notes "SC is
extremely slow to accurately simulate in software"; everything here is
built to make it merely slow:

**Word packing.**  Streams are packed 64 clocks per ``uint64`` word
(:func:`repro.core.bitstream.pack_words`), so one ALU op covers 64
simulated clocks.  A byte-packed reference path (8 clocks per op, the
original implementation style) is kept selectable via ``kernel="byte"``
or the ``REPRO_SC_KERNEL`` environment variable; both paths are
bit-identical by construction and asserted so in tests.

**Shared-lane activation encoding.**  One SNG lane per fan-in element,
time-multiplexed across the output positions of a chunk — exactly how
the hardware shares its comparator SNGs across the positions a pass
sweeps.  Lanes are re-seeded per chunk and per phase, so operand pairs
stay decorrelated where it matters (activation lane vs weight lane).

**Activation-encode caching.**  Activations are quantized to ``bits``
(<= 8 everywhere in the paper), so a lane can only ever carry
``2**bits + 1`` distinct values.  :class:`ActivationEncodeCache` builds
a per-``(scheme, bits, seed, lanes, length)`` value -> packed-stream
table once and every later forward pass *gathers* packed words instead
of re-running the comparator and ``np.packbits`` over every position.

**Channel blocking.**  The matmul kernels tile output channels so the
``(positions, channels, fan-in, words)`` intermediate stays inside a
configurable working-set budget (``block_bytes``) instead of looping
over channels one at a time in Python.

Per-kernel wall time is recorded once, in the observability layer's
:data:`~repro.obs.KERNEL_COUNTERS` store (``KERNEL_STATS`` here is an
alias of it), and — when tracing is enabled — as ``kernel:*`` spans in
the :mod:`repro.obs` trace tree, timed from the identical clock
readings.  Both are surfaced through the runtime metrics,
``python -m repro bench``, and ``python -m repro profile``.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

import numpy as np

from .. import obs
from ..core.bitstream import (packed_popcount, pack_words, popcount_words,
                              words_from_bytes)
from ..core.rng import make_source
from ..core.sng import StochasticNumberGenerator

__all__ = ["popcount_packed", "encode_packed", "split_or_matmul_counts",
           "bipolar_mux_matmul_counts", "encode_split_weight_streams",
           "encode_bipolar_weight_stream", "ActivationEncodeCache",
           "ENCODE_CACHE", "KernelStats", "KERNEL_STATS", "KERNELS",
           "default_kernel", "SplitMatmulPlan", "BipolarMatmulPlan"]

#: Selectable kernel implementations: ``"word"`` is the production
#: uint64 path, ``"byte"`` the uint8 per-channel-loop reference.
KERNELS = ("word", "byte")

#: Default working-set budget for one channel-blocked intermediate.
DEFAULT_BLOCK_BYTES = 4 << 20

# Consolidated popcount lives in repro.core.bitstream (bitwise_count
# fast path + numpy<2 table fallback in one place); re-exported here
# under the engine's historical name.
popcount_packed = packed_popcount


def default_kernel() -> str:
    """The kernel used when a call does not specify one.

    ``REPRO_SC_KERNEL=byte`` forces the byte reference path globally
    (e.g. to time or debug against it); default is ``"word"``.
    """
    return os.environ.get("REPRO_SC_KERNEL", "").strip() or "word"


def _resolve_kernel(kernel: str) -> str:
    kernel = kernel if kernel else default_kernel()
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of "
                         f"{KERNELS}")
    return kernel


# Per-kernel accounting lives in repro.obs: KernelStats is the generic
# CounterStore and KERNEL_STATS the process-global instance (one per
# worker process).  Keys are "<kernel>:<accumulator>" for the matmuls
# (e.g. "word:or", "byte:bipolar") and "encode:*" for the encode
# sub-stages.  Matmul timers are end-to-end, so the encode rows are a
# *breakdown* of (not additional to) the matmul rows.  The historical
# names are kept as aliases so existing consumers keep working.
KernelStats = obs.CounterStore
KERNEL_STATS = obs.KERNEL_COUNTERS

# Kernel sections record flat (calls, seconds) totals and, when tracing
# is enabled, an identical "kernel:<name>" span in the trace tree.
_Timed = obs.kernel_section


def _quantize_targets(values: np.ndarray, bits: int) -> np.ndarray:
    """Comparator targets (integer thresholds-to-beat) for ``values``."""
    values = np.asarray(values, dtype=np.float64)
    if values.size and (values.min() < 0 or values.max() > 1):
        raise ValueError("probabilities must lie in [0, 1]")
    levels = 1 << bits
    return np.round(values * levels).astype(np.uint32)


def _build_encode_table(scheme: str, bits: int, seed: int, lanes: int,
                        length: int, offset: int = 0) -> np.ndarray:
    """Value -> word-packed stream table, ``(lanes, 2**bits + 1, W)``.

    Row ``[k, v]`` is the packed stream a comparator SNG on lane ``k``
    emits for target ``v`` — identical bits to encoding ``v / 2**bits``
    directly, for every representable value at once.  ``offset`` builds
    the table for clock window ``[offset, offset + length)`` — the
    continuation segment of a resumable evaluation.
    """
    with _Timed("encode:table"):
        source = make_source(scheme, bits=bits, seed=seed)
        thresholds = source.thresholds(lanes, length, offset=offset)
        levels = 1 << bits
        n_words = (length + 63) // 64
        table = np.empty((lanes, levels + 1, n_words), dtype=np.uint64)
        # Build in value slabs so the 0/1 temporary stays bounded.
        slab = max(1, (16 << 20) // max(1, lanes * length))
        for v0 in range(0, levels + 1, slab):
            v = np.arange(v0, min(v0 + slab, levels + 1), dtype=np.uint32)
            table[:, v0:v0 + v.size] = pack_words(
                thresholds[:, None, :] < v[None, :, None]
            )
        return table


class ActivationEncodeCache:
    """LRU cache of :func:`_build_encode_table` results.

    Keyed by ``(scheme, bits, seed, lanes, length, offset)`` —
    everything the table is a pure function of.  The clock-window
    ``offset`` in the key keeps a continuation segment of a resumable
    run from ever aliasing the table of a from-zero run with the same
    length.  The per-chunk activation seed is part of the key, so a
    steady-traffic runtime hits this cache on every chunk after the
    first pass over a given layer shape.  Eviction is by total byte
    budget (``REPRO_ENCODE_CACHE_MB``, default 128) so huge layers
    cannot wedge a worker.

    Safe for concurrent readers; a race at worst builds the same
    deterministic table twice.
    """

    def __init__(self, max_bytes: int = None):
        if max_bytes is None:
            max_bytes = int(float(os.environ.get("REPRO_ENCODE_CACHE_MB",
                                                 "128")) * (1 << 20))
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self._bytes = 0
        self._entries = OrderedDict()
        self._pinned = set()
        self._lock = threading.Lock()

    def table(self, scheme: str, bits: int, seed: int, lanes: int,
              length: int, offset: int = 0) -> np.ndarray:
        key = (scheme, bits, seed, lanes, length, offset)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
        built = _build_encode_table(scheme, bits, seed, lanes, length, offset)
        with self._lock:
            self.misses += 1
            if key not in self._entries:
                self._entries[key] = built
                self._bytes += built.nbytes
                self._evict_locked()
            return self._entries[key]

    def install(self, key, table: np.ndarray, *,
                pinned: bool = True) -> np.ndarray:
        """Install a pre-built table under ``key`` without encoding.

        This is the shared-memory attach path
        (:mod:`repro.runtime.shm`): a worker receives the parent's
        value -> stream tables as zero-copy read-only views and seeds
        its cache with them, so its first forward pass gathers instead
        of rebuilding.  ``pinned`` entries are excluded from the byte
        budget and never evicted — a shared segment's pages are not
        this process's private memory, so evicting the view would save
        nothing and force a rebuild.  If ``key`` is already present the
        existing entry wins (installs never clobber live tables).
        """
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = table
            if pinned:
                self._pinned.add(key)
            else:
                self._bytes += table.nbytes
                self._evict_locked()
            return table

    def _evict_locked(self):
        """Drop oldest unpinned entries beyond the byte budget (but
        always keep at least one, so a single over-budget table still
        serves)."""
        while self._bytes > self.max_bytes:
            victims = [k for k in self._entries if k not in self._pinned]
            if len(victims) <= 1:
                break
            evicted = self._entries.pop(victims[0])
            self._bytes -= evicted.nbytes

    def counters(self) -> tuple:
        """``(hits, misses)`` since construction (or :meth:`clear`)."""
        with self._lock:
            return self.hits, self.misses

    def info(self) -> dict:
        """Point-in-time cache accounting (entries, pinned, bytes)."""
        with self._lock:
            return {"entries": len(self._entries),
                    "pinned": len(self._pinned),
                    "bytes": self._bytes,
                    "max_bytes": self.max_bytes,
                    "hits": self.hits,
                    "misses": self.misses}

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._pinned.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Process-global activation-encode table cache.
ENCODE_CACHE = ActivationEncodeCache()


def _act_thresholds(scheme: str, bits: int, seed: int, lanes: int,
                    length: int, offset: int = 0) -> np.ndarray:
    return make_source(scheme, bits=bits, seed=seed).thresholds(
        lanes, length, offset=offset)


_ROTATION_MEMO = OrderedDict()
_ROTATION_LOCK = threading.Lock()


def _lane_rotation(n_pos: int, fan_in: int, scale: int = 1) -> np.ndarray:
    """Rotating SNG lane assignment: position ``p`` reads fan-in element
    ``k`` from lane ``(p + k) % fan_in``.

    A bank of ``fan_in`` shared SNGs serves every position of a chunk,
    but with a fixed assignment any residual correlation between an
    activation lane and the weight lane it meets becomes a *systematic*
    bias repeated at every position.  Rotating the assignment per
    position re-randomizes the pairing so the bias averages out — at
    zero hardware cost (a barrel shift on the SNG bus) and zero extra
    encode work (the per-lane value -> stream tables are unchanged;
    only the gather indices rotate).

    ``scale`` pre-multiplies the lane index (the encode-table gather
    wants flat rows ``lane * (levels + 1) + target``).  The arrays are
    shape-deterministic and read-only, so they are memoized — chunking
    makes every forward pass request the same few shapes.
    """
    key = (n_pos, fan_in, scale)
    with _ROTATION_LOCK:
        hit = _ROTATION_MEMO.get(key)
        if hit is not None:
            _ROTATION_MEMO.move_to_end(key)
            return hit
    p = np.arange(n_pos)[:, None]
    k = np.arange(fan_in)[None, :]
    rotation = ((p + k) % fan_in) * scale
    rotation.setflags(write=False)
    with _ROTATION_LOCK:
        _ROTATION_MEMO[key] = rotation
        while len(_ROTATION_MEMO) > 32:
            _ROTATION_MEMO.popitem(last=False)
    return rotation


def _lane_rotation_rows(positions: np.ndarray, fan_in: int,
                        scale: int = 1) -> np.ndarray:
    """:func:`_lane_rotation` rows for explicit chunk-local positions.

    A row-subset re-execution (resumable extension of only the changed
    output positions) must reproduce each position's original lane
    assignment, which depends on its place *within the chunk* — not on
    how many rows are being re-encoded.  Not memoized: subsets vary.
    """
    positions = np.asarray(positions)
    k = np.arange(fan_in)[None, :]
    return ((positions[:, None] + k) % fan_in) * scale


def _encode_chunk_bytes(values: np.ndarray, length: int, bits: int,
                        scheme: str, seed: int, offset: int = 0) -> np.ndarray:
    """Shared-lane chunk encode, byte-packed: ``(P, K) -> (P, K, B)``.

    A bank of ``fan_in`` SNG lanes is time-multiplexed across the
    chunk's positions with the :func:`_lane_rotation` assignment; bit
    ``[p, k, t]`` is ``threshold[(p+k) % K, offset + t] <
    round(v[p, k] * 2**bits)``.
    """
    with _Timed("encode:act"):
        targets = _quantize_targets(values, bits)
        thresholds = _act_thresholds(scheme, bits, seed, values.shape[1],
                                     length, offset=offset)
        thr = thresholds[_lane_rotation(*values.shape)]
        return np.packbits(thr < targets[:, :, None], axis=-1)


def _time_major(words: np.ndarray) -> np.ndarray:
    """Swap the last two axes to the kernels' time-major word layout.

    The matmul kernels hold word-packed streams as ``(..., W, K)`` —
    words outermost, lanes innermost — so the fan-in OR/popcount
    reduction runs over the *last* (contiguous) axis, which is the
    layout numpy's pairwise ufunc reduction is fast on (~6x over a
    middle-axis reduce at conv shapes).
    """
    return np.ascontiguousarray(np.swapaxes(words, -1, -2))


def _encode_chunk_words(values: np.ndarray, length: int, bits: int,
                        scheme: str, seed: int, use_cache: bool,
                        lane_subset: np.ndarray = None, offset: int = 0,
                        positions: np.ndarray = None) -> np.ndarray:
    """Shared-lane chunk encode, time-major: ``(P, K) -> (P, W, K)``.

    Bit-identical streams to :func:`_encode_chunk_bytes`.  With the
    cache enabled this is a pure ``np.take`` gather from the
    value -> stream table (one row per (lane, value) pair).

    ``lane_subset`` (sorted fan-in indices) restricts the encode to the
    requested lanes, returning ``(P, W, len(lane_subset))`` — the same
    words a full encode would produce at those columns.  The SNG bank
    (thresholds, rotation, cache table) always spans the *full* fan-in,
    so a subset encode is a pure column selection, never a re-seeding:
    this is how precompiled plans skip all-zero weight lanes without
    perturbing a single bit of the lanes they keep.

    ``offset`` encodes the clock window ``[offset, offset + length)``
    (a resumable continuation segment); ``positions`` gives explicit
    chunk-local row positions for the lane rotation when ``values``
    holds only a subset of a chunk's rows — row ``i`` gets the exact
    lane assignment it would have at position ``positions[i]`` of a
    full-chunk encode.
    """
    lanes = values.shape[1]
    if lane_subset is not None and lane_subset.size == lanes:
        lane_subset = None
    if use_cache and bits <= 8 and lanes > 0:
        traced = obs.enabled()
        if traced:
            h0, m0 = ENCODE_CACHE.counters()
        table = ENCODE_CACHE.table(scheme, bits, seed, lanes, length,
                                   offset=offset)
        with _Timed("encode:act") as section:
            if traced:
                h1, m1 = ENCODE_CACHE.counters()
                section.add_counter("encode_cache_hits", h1 - h0)
                section.add_counter("encode_cache_misses", m1 - m0)
            if positions is None:
                rotation = _lane_rotation(*values.shape,
                                          scale=table.shape[1])
            else:
                rotation = _lane_rotation_rows(positions, lanes,
                                               scale=table.shape[1])
            if lane_subset is not None:
                rotation = rotation[:, lane_subset]
                values = values[:, lane_subset]
            rows = rotation + _quantize_targets(values, bits)
            flat = table.reshape(-1, table.shape[-1])
            return _time_major(np.take(flat, rows, axis=0))
    with _Timed("encode:act"):
        thresholds = _act_thresholds(scheme, bits, seed, lanes, length,
                                     offset=offset)
        if positions is None:
            rotation = _lane_rotation(*values.shape)
        else:
            rotation = _lane_rotation_rows(positions, lanes)
        if lane_subset is not None:
            rotation = rotation[:, lane_subset]
            values = values[:, lane_subset]
        targets = _quantize_targets(values, bits)
        thr = thresholds[rotation]
        return _time_major(pack_words(thr < targets[:, :, None]))


def _channel_block(n_chan: int, n_pos: int, n_lanes: int, n_words: int,
                   block_bytes: int) -> int:
    """Channels per block so one intermediate fits the working set."""
    per_channel = max(1, n_pos * n_lanes * n_words * 8)
    return max(1, min(n_chan, block_bytes // per_channel))


def _group_channel_bounds(n_chan: int, channel_groups: int) -> list:
    """``(start, stop)`` output-channel ranges, one per channel group.

    The group-aligned tiling constraint of a lowered grouped conv:
    channel blocks are carved within these bounds so no block mixes
    output channels from different groups (whose active fan-in lanes are
    disjoint under a block-diagonal weight plane).
    """
    if channel_groups <= 1:
        return [(0, n_chan)]
    size = n_chan // channel_groups
    return [(g * size, (g + 1) * size) for g in range(channel_groups)]


def encode_packed(values: np.ndarray, length: int, bits: int, scheme: str,
                  seed: int, offset: int = 0) -> np.ndarray:
    """Encode probabilities to bit-packed streams, one lane per element.

    Returns shape ``values.shape + (ceil(length / 8),)``.  This is the
    *weight* encoding path — every ``(channel, k)`` weight element keeps
    its own SNG lane; activations use the shared-lane chunk encoders.
    ``offset`` encodes clocks ``[offset, offset + length)``.
    """
    sng = StochasticNumberGenerator(length, bits=bits, scheme=scheme, seed=seed)
    return np.packbits(sng.generate(values, offset=offset), axis=-1)


def encode_split_weight_streams(weights: np.ndarray, *, length: int,
                                bits: int, scheme: str, seed: int,
                                offset: int = 0) -> tuple:
    """Pre-encode the two split-unipolar weight phase streams.

    Weight streams are constant for a fixed ``(length, bits, scheme,
    seed, offset)``, so callers running many forward passes encode them
    once and pass the result to :func:`split_or_matmul_counts` via
    ``weight_streams``.  Returns a 2-tuple of ``(w_part, w_packed)``
    pairs — the up (positive) and down (negative) phase — bit-identical
    to what the matmul would generate internally.  ``offset`` encodes
    the continuation window ``[offset, offset + length)`` for resumable
    extension segments.
    """
    weights = np.asarray(weights, dtype=np.float64)
    with _Timed("encode:weights"):
        phases = []
        for phase, w_part in ((0, np.maximum(weights, 0.0)),
                              (1, np.maximum(-weights, 0.0))):
            w_packed = encode_packed(w_part, length, bits, scheme,
                                     seed=seed + 7_368_787 * (phase + 1),
                                     offset=offset)
            phases.append((w_part, w_packed))
        return tuple(phases)


def encode_bipolar_weight_stream(weights: np.ndarray, *, length: int,
                                 bits: int, scheme: str, seed: int,
                                 offset: int = 0) -> np.ndarray:
    """Pre-encode the bipolar weight streams for the XNOR/MUX datapath.

    Bit-identical to the encoding :func:`bipolar_mux_matmul_counts`
    performs internally; pass the result back via ``weight_stream``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    with _Timed("encode:weights"):
        return encode_packed((weights + 1.0) / 2.0, length, bits, scheme,
                             seed=seed + 7_368_787, offset=offset)


def _mux_select_matrix(fan_in: int, length: int, seed: int,
                       offset: int = 0) -> np.ndarray:
    """One-hot (fan_in, length) selection for MUX accumulation, packed.

    The select draw at clock ``t`` depends only on ``(seed, t)`` — a
    seeded ``default_rng`` emits the same leading integers for any
    requested size — so ``offset`` slices the window ``[offset,
    offset + length)`` out of one longer draw and MUX accumulation
    stays prefix-stable like the threshold sources.
    """
    rng = np.random.default_rng(seed)
    select = rng.integers(0, fan_in, size=offset + length)[offset:]
    onehot = (np.arange(fan_in)[:, None] == select[None, :]).astype(np.uint8)
    return np.packbits(onehot, axis=-1)


def split_or_matmul_counts(acts: np.ndarray, weights: np.ndarray, *,
                           length: int, bits: int, scheme: str, seed: int,
                           accumulator: str = "or",
                           chunk_positions: int = 256,
                           weight_streams: tuple = None,
                           kernel: str = None,
                           block_bytes: int = None,
                           encode_cache: bool = True,
                           start_bit: int = 0) -> np.ndarray:
    """Bitstream-exact split-unipolar matrix multiply.

    Parameters
    ----------
    acts:
        ``(P, K)`` activation values in [0, 1] (P output positions, K
        fan-in).
    weights:
        ``(C, K)`` signed weights in [-1, 1] (C output channels).
    length:
        Per-phase stream length in clocks.
    start_bit:
        Count the clock window ``[start_bit, start_bit + length)``
        instead of ``[0, length)``.  With a prefix-stable RNG scheme,
        counts over disjoint windows sum to the one-shot count over
        their union — the additivity the resumable evaluation path is
        built on.  Pre-encoded ``weight_streams`` must be encoded at
        the same ``start_bit``.
    accumulator:
        ``"or"`` — OR-reduce product streams (ACOUSTIC);
        ``"apc"`` — exact popcount across fan-in (binary accumulation);
        ``"mux"`` — stream-level k:1 multiplexing (scaled addition).
    weight_streams:
        Optional pre-encoded phase streams from
        :func:`encode_split_weight_streams` (same ``length``/``bits``/
        ``scheme``/``seed``); skips the per-call weight encoding.
    kernel:
        ``"word"`` (uint64 bitplanes, channel-blocked; default) or
        ``"byte"`` (uint8 reference path).  Both return identical
        counts; ``None`` resolves via :func:`default_kernel`.
    block_bytes:
        Working-set budget for one channel-blocked intermediate of the
        word kernel (default :data:`DEFAULT_BLOCK_BYTES`).
    encode_cache:
        Use the global :data:`ENCODE_CACHE` value -> stream tables for
        activation encoding (word kernel only; bit-identical either
        way).

    Returns
    -------
    ``(P, C)`` signed counter values: up-phase count minus down-phase
    count.  Divide by ``length`` to decode (for "mux", multiply by the
    fan-in as well to undo the scaling).
    """
    acts = np.asarray(acts, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if acts.ndim != 2 or weights.ndim != 2 or acts.shape[1] != weights.shape[1]:
        raise ValueError("acts must be (P, K) and weights (C, K)")
    if accumulator not in ("or", "apc", "mux"):
        raise ValueError(f"unknown accumulator {accumulator!r}")
    kernel = _resolve_kernel(kernel)
    if block_bytes is None:
        block_bytes = DEFAULT_BLOCK_BYTES
    n_pos, fan_in = acts.shape
    n_chan = weights.shape[0]
    counts = np.zeros((n_pos, n_chan), dtype=np.int64)

    if weight_streams is None:
        # Weight streams: one lane per (channel, k) element, regenerated
        # per phase with an independent seed space.
        weight_streams = encode_split_weight_streams(
            weights, length=length, bits=bits, scheme=scheme, seed=seed,
            offset=start_bit
        )
    for _, (_, w_packed) in enumerate(weight_streams):
        if w_packed.shape[:2] != (n_chan, fan_in):
            raise ValueError("weight_streams do not match the weight shape")
    if fan_in == 0 or n_pos == 0 or n_chan == 0:
        return counts

    args = (counts, acts, weight_streams, length, bits, scheme, seed,
            accumulator, chunk_positions, start_bit)
    with _Timed(f"{kernel}:{accumulator}") as section:
        section.add_counter("positions", n_pos)
        section.add_counter("channels", n_chan)
        # Upper bound, as in LayerPlan: operand gating skips the lanes
        # whose weight phase component is zero.
        section.add_counter("product_bits",
                            2 * n_pos * n_chan * fan_in * length)
        if kernel == "word":
            _split_matmul_word(*args, block_bytes, encode_cache)
        else:
            _split_matmul_byte(*args)
    return counts


def _split_matmul_byte(counts, acts, weight_streams, length, bits, scheme,
                       seed, accumulator, chunk_positions,
                       start_bit) -> None:
    """Reference byte-path: uint8 packing, per-channel Python loops."""
    n_pos, fan_in = acts.shape
    n_chan = counts.shape[1]
    for phase, (w_part, w_packed) in enumerate(weight_streams):
        sign = 1 if phase == 0 else -1
        # Lanes whose weight component is zero (opposite sign, or a true
        # zero weight) carry all-zero streams and cannot set an OR output
        # bit, so they are skipped — the same operand gating that keeps
        # idle hardware lanes from switching.
        active_lanes = [np.flatnonzero(w_part[c] > 0) for c in range(n_chan)]
        if accumulator == "mux":
            select = _mux_select_matrix(fan_in, length,
                                        seed + 104_729 * (phase + 1),
                                        offset=start_bit)
        for start in range(0, n_pos, chunk_positions):
            sl = slice(start, min(start + chunk_positions, n_pos))
            a_packed = _encode_chunk_bytes(
                acts[sl], length, bits, scheme,
                seed=seed + 15_485_863 * (phase + 1) + 104_651 * start,
                offset=start_bit,
            )
            # a_packed: (p, K, B); w_packed: (C, K, B).
            if accumulator == "or":
                for c in range(n_chan):
                    lanes = active_lanes[c]
                    if lanes.size == 0:
                        continue
                    prods = a_packed[:, lanes, :] & w_packed[c, lanes, :]
                    acc = np.bitwise_or.reduce(prods, axis=1)
                    counts[sl, c] += sign * packed_popcount(acc, axis=-1)
            elif accumulator == "apc":
                for c in range(n_chan):
                    lanes = active_lanes[c]
                    if lanes.size == 0:
                        continue
                    prods = a_packed[:, lanes, :] & w_packed[c, lanes, :]
                    counts[sl, c] += sign * packed_popcount(
                        prods, axis=(-2, -1)
                    )
            else:  # mux
                # Select gating hoisted out of the channel loop:
                # (a & sel) & w == (a & w) & sel, one gating per chunk.
                gated_a = a_packed & select[None, :, :]
                for c in range(n_chan):
                    prods = gated_a & w_packed[c][None, :, :]
                    acc = np.bitwise_or.reduce(prods, axis=1)
                    counts[sl, c] += sign * packed_popcount(acc, axis=-1)


def _split_matmul_word(counts, acts, weight_streams, length, bits, scheme,
                       seed, accumulator, chunk_positions, start_bit,
                       block_bytes, encode_cache) -> None:
    """uint64 word path: channel-blocked broadcast kernels.

    Operands are held time-major (``(..., W, K)``, see
    :func:`_time_major`) so the fan-in reduction runs over the
    contiguous last axis.
    """
    n_pos, fan_in = acts.shape
    n_chan = counts.shape[1]
    n_words = (length + 63) // 64
    for phase, (w_part, w_packed) in enumerate(weight_streams):
        sign = 1 if phase == 0 else -1
        w_words = _time_major(words_from_bytes(w_packed))    # (C, W, K)
        active = w_part > 0                                  # (C, K)
        if accumulator == "mux":
            select_words = _time_major(words_from_bytes(_mux_select_matrix(
                fan_in, length, seed + 104_729 * (phase + 1),
                offset=start_bit)))                          # (W, K)
        for start in range(0, n_pos, chunk_positions):
            sl = slice(start, min(start + chunk_positions, n_pos))
            a_words = _encode_chunk_words(
                acts[sl], length, bits, scheme,
                seed=seed + 15_485_863 * (phase + 1) + 104_651 * start,
                use_cache=encode_cache, offset=start_bit,
            )                                                # (p, W, K)
            p = a_words.shape[0]
            cb = _channel_block(n_chan, p, fan_in, n_words, block_bytes)
            if accumulator == "mux":
                # Hoisted select gating: one AND per chunk, not per
                # channel; (a & sel) & w == (a & w) & sel.
                gated_a = a_words & select_words[None, :, :]
                for c0 in range(0, n_chan, cb):
                    ww = w_words[c0:c0 + cb]
                    prods = gated_a[:, None, :, :] & ww[None, :, :, :]
                    acc = np.bitwise_or.reduce(prods, axis=-1)
                    counts[sl, c0:c0 + cb] += sign * popcount_words(
                        acc, axis=-1)
            else:
                for c0 in range(0, n_chan, cb):
                    c1 = min(c0 + cb, n_chan)
                    # Operand gating, blocked: slice the union of the
                    # block's active lanes (all-zero weight streams can
                    # never set an OR bit or add to a popcount, so the
                    # union slice is exact).
                    lanes = np.flatnonzero(active[c0:c1].any(axis=0))
                    if lanes.size == 0:
                        continue
                    if lanes.size == fan_in:
                        aw, ww = a_words, w_words[c0:c1]
                    else:
                        aw = a_words[:, :, lanes]
                        ww = w_words[c0:c1][:, :, lanes]
                    prods = aw[:, None, :, :] & ww[None, :, :, :]
                    if accumulator == "or":
                        acc = np.bitwise_or.reduce(prods, axis=-1)
                        counts[sl, c0:c1] += sign * popcount_words(
                            acc, axis=-1)
                    else:  # apc
                        counts[sl, c0:c1] += sign * popcount_words(
                            prods, axis=(-2, -1))


class _NullSection:
    """Timing-section stand-in for unrecorded (autotune probe) runs."""

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def add_counter(self, name, value=1):
        pass


_NULL_SECTION = _NullSection()


class _SplitPhase:
    """One split-unipolar phase of a :class:`SplitMatmulPlan`."""

    __slots__ = ("phase", "sign", "active", "union", "w_words",
                 "select_words", "blocks")

    def __init__(self, phase, sign, active, union, w_words, select_words):
        self.phase = phase
        self.sign = sign
        self.active = active          # (C, K) bool, for retiling
        self.union = union            # sorted active-lane indices
        self.w_words = w_words        # (C, W, |union|) time-major
        self.select_words = select_words
        self.blocks = []


class SplitMatmulPlan:
    """Precompiled split-unipolar matmul: gather/mask/block plan baked in.

    Compiles everything :func:`split_or_matmul_counts` re-derives on
    every call — time-major weight words, zero-weight lane masks, the
    channel-block partition — into a reusable plan for one fixed
    ``(weights, length, bits, scheme, seed, accumulator)``.
    :meth:`execute` is then bit-identical to the generic word kernel by
    construction (asserted across the zoo in
    ``tests/test_plan_specialization.py``) while doing strictly less
    work:

    - lanes whose weight phase component is zero everywhere are dropped
      at *encode* time (``lane_subset``), not just at the AND: the
      "skipped" of ACOUSTIC's or-unipolar skipped SC;
    - per channel block, the active-lane union and the pre-sliced weight
      words are compile-time constants;
    - the block partition is retilable (:meth:`retile`) so a per-layer
      autotuner can pick ``block_bytes`` from measurement.

    The optional ``jit_or`` argument to :meth:`execute` is a drop-in
    fused AND/OR/popcount inner loop (see :mod:`repro.simulator.jit`);
    the pure-numpy path remains the canonical one.

    ``channel_groups > 1`` declares the weight plane block-diagonal over
    that many equal channel groups (a lowered grouped convolution): the
    channel-block partition is then derived *within* group boundaries,
    so every block's active-lane union stays confined to its own group's
    fan-in lanes and the AND stage clocks at most ``1/groups`` of the
    dense lanes.  Tiling is value-neutral — the grouping changes which
    channels share a block, never a single output bit.
    """

    def __init__(self, weights: np.ndarray, *, length: int, bits: int,
                 scheme: str, seed: int, accumulator: str = "or",
                 block_bytes: int = None, chunk_positions: int = 256,
                 weight_streams: tuple = None, encode_cache: bool = True,
                 bit_offset: int = 0, channel_groups: int = 1):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError("weights must be (C, K)")
        if accumulator not in ("or", "apc", "mux"):
            raise ValueError(f"unknown accumulator {accumulator!r}")
        if bit_offset < 0:
            raise ValueError("bit_offset must be non-negative")
        if channel_groups < 1 or weights.shape[0] % channel_groups:
            raise ValueError(
                f"channel_groups={channel_groups} must divide "
                f"n_chan={weights.shape[0]}")
        self.channel_groups = channel_groups
        self.length = length
        self.bits = bits
        self.scheme = scheme
        self.seed = seed
        self.accumulator = accumulator
        self.chunk_positions = chunk_positions
        self.encode_cache = encode_cache
        #: Absolute clock the plan's window starts at: the plan counts
        #: bits ``[bit_offset, bit_offset + length)`` of the conceptual
        #: streams.  A segment plan of a resumable evaluation; 0 for the
        #: ordinary from-zero case.  Pre-supplied ``weight_streams``
        #: must be encoded at the same offset.
        self.bit_offset = bit_offset
        self.n_chan, self.fan_in = weights.shape
        self.n_words = (length + 63) // 64
        if weight_streams is None:
            weight_streams = encode_split_weight_streams(
                weights, length=length, bits=bits, scheme=scheme, seed=seed,
                offset=bit_offset)
        self.phases = []
        for phase, (w_part, w_packed) in enumerate(weight_streams):
            active = w_part > 0
            union = np.flatnonzero(active.any(axis=0))
            w_words = _time_major(words_from_bytes(w_packed))
            select_words = None
            if accumulator == "mux":
                select_words = _time_major(words_from_bytes(
                    _mux_select_matrix(self.fan_in, length,
                                       seed + 104_729 * (phase + 1),
                                       offset=bit_offset)))
            if union.size < self.fan_in:
                w_words = np.ascontiguousarray(w_words[:, :, union])
                if select_words is not None:
                    select_words = np.ascontiguousarray(
                        select_words[:, union])
            self.phases.append(_SplitPhase(
                phase, 1 if phase == 0 else -1, active, union, w_words,
                select_words))
        self.retile(block_bytes)

    # -- tiling -------------------------------------------------------

    def retile(self, block_bytes: int = None) -> "SplitMatmulPlan":
        """(Re)derive the channel-block partition for ``block_bytes``.

        The partition never changes a single output bit — popcounts are
        exact integers and channels are independent — so the autotuner
        is free to measure any candidate.  Returns ``self``.
        """
        self.block_bytes = (block_bytes if block_bytes is not None
                            else DEFAULT_BLOCK_BYTES)
        cb = _channel_block(self.n_chan, self.chunk_positions, self.fan_in,
                            self.n_words, self.block_bytes)
        self.channel_block = cb
        for ph in self.phases:
            ph.blocks = []
            for g0, g1 in _group_channel_bounds(self.n_chan,
                                                self.channel_groups):
                for c0 in range(g0, g1, cb):
                    c1 = min(c0 + cb, g1)
                    if self.accumulator == "mux":
                        # MUX gates with the select stream once per
                        # chunk; lane skipping happens at the union
                        # level only.
                        ph.blocks.append((c0, c1, None,
                                          np.ascontiguousarray(
                                              ph.w_words[c0:c1])))
                        continue
                    lanes = np.flatnonzero(ph.active[c0:c1].any(axis=0))
                    if lanes.size == 0:
                        continue    # all-zero block: contributes nothing
                    rel = np.searchsorted(ph.union, lanes)
                    if rel.size == ph.union.size:
                        rel = None  # block spans every encoded lane
                        ww = np.ascontiguousarray(ph.w_words[c0:c1])
                    else:
                        ww = np.ascontiguousarray(
                            ph.w_words[c0:c1][:, :, rel])
                    ph.blocks.append((c0, c1, rel, ww))
        return self

    # -- skip accounting ----------------------------------------------

    @property
    def encode_lanes_skipped(self) -> int:
        """Fan-in lanes never encoded, summed over phases."""
        return sum(self.fan_in - ph.union.size for ph in self.phases)

    @property
    def dense_product_lanes(self) -> int:
        """(channel, lane) AND pairs a dense kernel would clock."""
        return len(self.phases) * self.n_chan * self.fan_in

    @property
    def active_product_lanes(self) -> int:
        """(channel, lane) AND pairs this plan actually clocks."""
        total = 0
        for ph in self.phases:
            for c0, c1, rel, _ in ph.blocks:
                lanes = ph.union.size if rel is None else rel.size
                total += (c1 - c0) * lanes
        return total

    @property
    def lanes_skipped_fraction(self) -> float:
        dense = self.dense_product_lanes
        if not dense:
            return 0.0
        return 1.0 - self.active_product_lanes / dense

    # -- encode-table publication -------------------------------------

    def encode_table_keys(self, n_positions: int) -> list:
        """Every :data:`ENCODE_CACHE` key :meth:`execute` will touch for
        up to ``n_positions`` activation rows.

        The per-chunk SNG seed is a pure function of (phase, chunk
        start), so the tables a worker would build are enumerable at
        compile time — this is what lets the parent pre-build them once
        and publish them through shared memory
        (:mod:`repro.runtime.shm`) instead of paying the build in every
        pool process.  Keys match the cache-eligibility conditions of
        ``_encode_chunk_words`` exactly (cache on, ``bits <= 8``,
        non-empty fan-in, non-empty phase union).
        """
        keys = []
        if not self.encode_cache or self.bits > 8 or self.fan_in == 0:
            return keys
        for ph in self.phases:
            if ph.union.size == 0:
                continue
            for start in range(0, n_positions, self.chunk_positions):
                keys.append((self.scheme, self.bits,
                             self.seed + 15_485_863 * (ph.phase + 1)
                             + 104_651 * start,
                             self.fan_in, self.length, self.bit_offset))
        return keys

    # -- execution ----------------------------------------------------

    def execute(self, acts: np.ndarray, *, jit_or=None,
                record: bool = True) -> np.ndarray:
        """Run the planned matmul; bit-identical to
        :func:`split_or_matmul_counts` on the same operands.

        ``jit_or`` is an optional ``(aw, ww) -> (P, C) popcount`` fused
        inner loop for the OR accumulator; ``record=False`` skips the
        kernel-counter accounting (autotune probes must not pollute the
        serving metrics).
        """
        acts = np.asarray(acts, dtype=np.float64)
        if acts.ndim != 2 or acts.shape[1] != self.fan_in:
            raise ValueError(
                f"acts must be (P, {self.fan_in}), got {acts.shape}")
        n_pos = acts.shape[0]
        counts = np.zeros((n_pos, self.n_chan), dtype=np.int64)
        if self.fan_in == 0 or n_pos == 0 or self.n_chan == 0:
            return counts
        section = (_Timed(f"plan:{self.accumulator}") if record
                   else _NULL_SECTION)
        with section:
            section.add_counter("positions", n_pos)
            section.add_counter("channels", self.n_chan)
            section.add_counter(
                "product_bits",
                n_pos * self.active_product_lanes * self.length)
            section.add_counter(
                "product_bits_skipped",
                n_pos * (self.dense_product_lanes
                         - self.active_product_lanes) * self.length)
            for ph in self.phases:
                if ph.union.size == 0:
                    continue
                self._execute_phase(ph, acts, counts, jit_or)
        return counts

    def _execute_phase(self, ph, acts, counts, jit_or) -> None:
        subset = ph.union if ph.union.size < self.fan_in else None
        for start in range(0, acts.shape[0], self.chunk_positions):
            sl = slice(start, min(start + self.chunk_positions,
                                  acts.shape[0]))
            a_words = _encode_chunk_words(
                acts[sl], self.length, self.bits, self.scheme,
                seed=(self.seed + 15_485_863 * (ph.phase + 1)
                      + 104_651 * start),
                use_cache=self.encode_cache, lane_subset=subset,
                offset=self.bit_offset,
            )
            self._apply_blocks(ph, a_words, counts, sl, jit_or)

    def _apply_blocks(self, ph, a_words, counts, sel, jit_or) -> None:
        """Accumulate one chunk's encoded words into ``counts[sel]``.

        ``sel`` is either a contiguous slice (full-chunk execution) or
        an integer-array row index (subset re-execution); the math is
        identical either way.
        """
        if self.accumulator == "mux":
            a_words = a_words & ph.select_words[None, :, :]
        for c0, c1, rel, ww in ph.blocks:
            aw = a_words if rel is None else a_words[:, :, rel]
            if self.accumulator == "apc":
                prods = aw[:, None, :, :] & ww[None, :, :, :]
                counts[sel, c0:c1] += ph.sign * popcount_words(
                    prods, axis=(-2, -1))
            elif jit_or is not None:
                counts[sel, c0:c1] += ph.sign * jit_or(aw, ww)
            else:
                prods = aw[:, None, :, :] & ww[None, :, :, :]
                acc = np.bitwise_or.reduce(prods, axis=-1)
                counts[sel, c0:c1] += ph.sign * popcount_words(
                    acc, axis=-1)

    def execute_rows(self, acts: np.ndarray, rows: np.ndarray, *,
                     jit_or=None, record: bool = True) -> np.ndarray:
        """Run the planned matmul for a *subset* of output positions.

        ``acts`` holds the activation rows at absolute positions
        ``rows`` (strictly increasing) of a conceptual ``(P, fan_in)``
        matrix; the result is bit-identical to
        ``self.execute(full_acts)[rows]``.  Each row is grouped back
        into its original chunk so it sees the exact per-chunk SNG seed
        and in-chunk lane rotation a full run would give it — this is
        what lets a resumable extension recompute only the rows whose
        inputs changed.
        """
        acts = np.asarray(acts, dtype=np.float64)
        rows = np.asarray(rows, dtype=np.int64)
        if acts.ndim != 2 or acts.shape[1] != self.fan_in:
            raise ValueError(
                f"acts must be (R, {self.fan_in}), got {acts.shape}")
        if rows.ndim != 1 or rows.shape[0] != acts.shape[0]:
            raise ValueError("rows must be 1-D and match acts rows")
        if rows.size and (rows[0] < 0 or np.any(np.diff(rows) <= 0)):
            raise ValueError("rows must be strictly increasing and >= 0")
        counts = np.zeros((rows.size, self.n_chan), dtype=np.int64)
        if self.fan_in == 0 or rows.size == 0 or self.n_chan == 0:
            return counts
        chunk_ids = rows // self.chunk_positions
        bounds = np.flatnonzero(np.diff(chunk_ids)) + 1
        groups = np.split(np.arange(rows.size), bounds)
        section = (_Timed(f"plan:{self.accumulator}") if record
                   else _NULL_SECTION)
        with section:
            section.add_counter("positions", rows.size)
            section.add_counter("channels", self.n_chan)
            section.add_counter(
                "product_bits",
                rows.size * self.active_product_lanes * self.length)
            for ph in self.phases:
                if ph.union.size == 0:
                    continue
                subset = ph.union if ph.union.size < self.fan_in else None
                for g in groups:
                    start = int(chunk_ids[g[0]]) * self.chunk_positions
                    a_words = _encode_chunk_words(
                        acts[g], self.length, self.bits, self.scheme,
                        seed=(self.seed + 15_485_863 * (ph.phase + 1)
                              + 104_651 * start),
                        use_cache=self.encode_cache, lane_subset=subset,
                        offset=self.bit_offset, positions=rows[g] - start,
                    )
                    self._apply_blocks(ph, a_words, counts, g, jit_or)
        return counts


class BipolarMatmulPlan:
    """Precompiled bipolar XNOR/MUX matmul (prior-work datapath).

    Bakes the select-gated weight operand ``~w & sel`` and the channel
    partition at compile time; no lane skipping — a zero bipolar weight
    encodes to a half-density stream, not silence.  :meth:`execute` is
    bit-identical to :func:`bipolar_mux_matmul_counts`.
    """

    def __init__(self, weights: np.ndarray, *, length: int, bits: int,
                 scheme: str, seed: int, block_bytes: int = None,
                 chunk_positions: int = 256,
                 weight_stream: np.ndarray = None,
                 encode_cache: bool = True, bit_offset: int = 0,
                 channel_groups: int = 1):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError("weights must be (C, K)")
        if bit_offset < 0:
            raise ValueError("bit_offset must be non-negative")
        if channel_groups < 1 or weights.shape[0] % channel_groups:
            raise ValueError(
                f"channel_groups={channel_groups} must divide "
                f"n_chan={weights.shape[0]}")
        # No lane skipping on the bipolar path, so group-aligned tiling
        # buys nothing — accepted for API symmetry with the split plan.
        self.channel_groups = channel_groups
        self.length = length
        self.bits = bits
        self.scheme = scheme
        self.seed = seed
        self.chunk_positions = chunk_positions
        self.encode_cache = encode_cache
        #: See :attr:`SplitMatmulPlan.bit_offset`.
        self.bit_offset = bit_offset
        self.n_chan, self.fan_in = weights.shape
        self.n_words = (length + 63) // 64
        if weight_stream is None:
            weight_stream = encode_bipolar_weight_stream(
                weights, length=length, bits=bits, scheme=scheme, seed=seed,
                offset=bit_offset)
        select = _mux_select_matrix(self.fan_in, length, seed + 104_729,
                                    offset=bit_offset)
        self.select_words = _time_major(words_from_bytes(select))
        self.w_sel = (~_time_major(words_from_bytes(weight_stream))
                      & self.select_words[None, :, :])
        self.retile(block_bytes)

    def retile(self, block_bytes: int = None) -> "BipolarMatmulPlan":
        self.block_bytes = (block_bytes if block_bytes is not None
                            else DEFAULT_BLOCK_BYTES)
        cb = _channel_block(self.n_chan, self.chunk_positions, self.fan_in,
                            self.n_words, self.block_bytes)
        self.channel_block = cb
        self.blocks = [(c0, min(c0 + cb, g1))
                       for g0, g1 in _group_channel_bounds(
                           self.n_chan, self.channel_groups)
                       for c0 in range(g0, g1, cb)]
        return self

    encode_lanes_skipped = 0
    lanes_skipped_fraction = 0.0

    @property
    def dense_product_lanes(self) -> int:
        return self.n_chan * self.fan_in

    active_product_lanes = dense_product_lanes

    def encode_table_keys(self, n_positions: int) -> list:
        """See :meth:`SplitMatmulPlan.encode_table_keys` (the bipolar
        datapath has a single temporal phase)."""
        keys = []
        if not self.encode_cache or self.bits > 8 or self.fan_in == 0:
            return keys
        for start in range(0, n_positions, self.chunk_positions):
            keys.append((self.scheme, self.bits,
                         self.seed + 15_485_863 + 104_651 * start,
                         self.fan_in, self.length, self.bit_offset))
        return keys

    def execute(self, acts: np.ndarray, *,
                record: bool = True) -> np.ndarray:
        """Planned bipolar matmul over ``acts`` in [0, 1] (the plan
        applies the ``(v + 1) / 2`` bipolar encoding itself, exactly
        like the generic kernel)."""
        acts = np.asarray(acts, dtype=np.float64)
        if acts.ndim != 2 or acts.shape[1] != self.fan_in:
            raise ValueError(
                f"acts must be (P, {self.fan_in}), got {acts.shape}")
        n_pos = acts.shape[0]
        counts = np.zeros((n_pos, self.n_chan), dtype=np.int64)
        if self.fan_in == 0 or n_pos == 0 or self.n_chan == 0:
            return counts
        section = _Timed("plan:bipolar") if record else _NULL_SECTION
        with section:
            section.add_counter("positions", n_pos)
            section.add_counter("channels", self.n_chan)
            section.add_counter(
                "product_bits",
                n_pos * self.n_chan * self.fan_in * self.length)
            for start in range(0, n_pos, self.chunk_positions):
                sl = slice(start, min(start + self.chunk_positions, n_pos))
                a_words = _encode_chunk_words(
                    (acts[sl] + 1.0) / 2.0, self.length, self.bits,
                    self.scheme, seed=self.seed + 15_485_863
                    + 104_651 * start,
                    use_cache=self.encode_cache, offset=self.bit_offset,
                )
                self._apply_blocks(a_words, counts, sl)
        return counts

    def _apply_blocks(self, a_words, counts, sel) -> None:
        a_sel = a_words & self.select_words[None, :, :]
        for c0, c1 in self.blocks:
            gated = a_sel[:, None, :, :] ^ self.w_sel[None, c0:c1]
            acc = np.bitwise_or.reduce(gated, axis=-1)
            counts[sel, c0:c1] += popcount_words(acc, axis=-1)

    def execute_rows(self, acts: np.ndarray, rows: np.ndarray, *,
                     record: bool = True) -> np.ndarray:
        """Subset-of-positions variant of :meth:`execute`; bit-identical
        to ``self.execute(full_acts)[rows]`` (see
        :meth:`SplitMatmulPlan.execute_rows`)."""
        acts = np.asarray(acts, dtype=np.float64)
        rows = np.asarray(rows, dtype=np.int64)
        if acts.ndim != 2 or acts.shape[1] != self.fan_in:
            raise ValueError(
                f"acts must be (R, {self.fan_in}), got {acts.shape}")
        if rows.ndim != 1 or rows.shape[0] != acts.shape[0]:
            raise ValueError("rows must be 1-D and match acts rows")
        if rows.size and (rows[0] < 0 or np.any(np.diff(rows) <= 0)):
            raise ValueError("rows must be strictly increasing and >= 0")
        counts = np.zeros((rows.size, self.n_chan), dtype=np.int64)
        if self.fan_in == 0 or rows.size == 0 or self.n_chan == 0:
            return counts
        chunk_ids = rows // self.chunk_positions
        bounds = np.flatnonzero(np.diff(chunk_ids)) + 1
        groups = np.split(np.arange(rows.size), bounds)
        section = _Timed("plan:bipolar") if record else _NULL_SECTION
        with section:
            section.add_counter("positions", rows.size)
            section.add_counter("channels", self.n_chan)
            section.add_counter(
                "product_bits",
                rows.size * self.n_chan * self.fan_in * self.length)
            for g in groups:
                start = int(chunk_ids[g[0]]) * self.chunk_positions
                a_words = _encode_chunk_words(
                    (acts[g] + 1.0) / 2.0, self.length, self.bits,
                    self.scheme,
                    seed=self.seed + 15_485_863 + 104_651 * start,
                    use_cache=self.encode_cache, offset=self.bit_offset,
                    positions=rows[g] - start,
                )
                self._apply_blocks(a_words, counts, g)
        return counts


def bipolar_mux_matmul_counts(acts: np.ndarray, weights: np.ndarray, *,
                              length: int, bits: int, scheme: str, seed: int,
                              chunk_positions: int = 256,
                              weight_stream: np.ndarray = None,
                              kernel: str = None,
                              block_bytes: int = None,
                              encode_cache: bool = True,
                              start_bit: int = 0) -> np.ndarray:
    """Bitstream-exact *bipolar* matrix multiply with MUX accumulation.

    This is the datapath of prior SC accelerators (SC-DCNN, HEIF, ...):
    operands encoded bipolar (``P(1) = (v+1)/2``), XNOR multipliers, and a
    k:1 multiplexer performing scaled addition.  The returned ``(P, C)``
    counts are ones-counts of the MUX output stream; decoding
    ``2*counts/length - 1`` estimates ``mean_i(a_i * w_i)`` — i.e. the
    sum *divided by the fan-in*, the scaling loss that motivates
    ACOUSTIC's OR-unipolar design.

    ``acts`` in [0, 1] (post-ReLU), ``weights`` in [-1, 1].  ``kernel``/
    ``block_bytes``/``encode_cache``/``start_bit`` as in
    :func:`split_or_matmul_counts` (a pre-encoded ``weight_stream``
    must match ``start_bit``).
    """
    acts = np.asarray(acts, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if acts.ndim != 2 or weights.ndim != 2 or acts.shape[1] != weights.shape[1]:
        raise ValueError("acts must be (P, K) and weights (C, K)")
    kernel = _resolve_kernel(kernel)
    if block_bytes is None:
        block_bytes = DEFAULT_BLOCK_BYTES
    n_pos, fan_in = acts.shape
    n_chan = weights.shape[0]
    counts = np.zeros((n_pos, n_chan), dtype=np.int64)
    if weight_stream is None:
        weight_stream = encode_bipolar_weight_stream(
            weights, length=length, bits=bits, scheme=scheme, seed=seed,
            offset=start_bit
        )
    w_packed = weight_stream
    if w_packed.shape[:2] != (n_chan, fan_in):
        raise ValueError("weight_stream does not match the weight shape")
    if fan_in == 0 or n_pos == 0 or n_chan == 0:
        return counts
    # The select stream's zero pad bits also mask the XNOR's inverted
    # padding, so partial final words/bytes stay clean.  The XNOR+gate
    # is computed as (a & sel) ^ (~w & sel): ~(a ^ w) & sel distributes
    # over XOR, letting both kernels hoist the activation gating out of
    # the channel dimension and pre-gate the weights once per call.
    select = _mux_select_matrix(fan_in, length, seed + 104_729,
                                offset=start_bit)
    n_words = (length + 63) // 64
    with _Timed(f"{kernel}:bipolar") as section:
        section.add_counter("positions", n_pos)
        section.add_counter("channels", n_chan)
        section.add_counter("product_bits", n_pos * n_chan * fan_in * length)
        if kernel == "word":
            select_words = _time_major(words_from_bytes(select))  # (W, K)
            w_sel = ~_time_major(words_from_bytes(w_packed)) \
                & select_words[None, :, :]                        # (C, W, K)
            for start in range(0, n_pos, chunk_positions):
                sl = slice(start, min(start + chunk_positions, n_pos))
                a_words = _encode_chunk_words(
                    (acts[sl] + 1.0) / 2.0, length, bits, scheme,
                    seed=seed + 15_485_863 + 104_651 * start,
                    use_cache=encode_cache, offset=start_bit,
                )                                                 # (p, W, K)
                a_sel = a_words & select_words[None, :, :]
                p = a_sel.shape[0]
                cb = _channel_block(n_chan, p, fan_in, n_words, block_bytes)
                for c0 in range(0, n_chan, cb):
                    gated = a_sel[:, None, :, :] ^ w_sel[None, c0:c0 + cb]
                    acc = np.bitwise_or.reduce(gated, axis=-1)
                    counts[sl, c0:c0 + cb] += popcount_words(acc, axis=-1)
        else:
            w_sel = ~w_packed & select[None, :, :]
            for start in range(0, n_pos, chunk_positions):
                sl = slice(start, min(start + chunk_positions, n_pos))
                a_packed = _encode_chunk_bytes(
                    (acts[sl] + 1.0) / 2.0, length, bits, scheme,
                    seed=seed + 15_485_863 + 104_651 * start,
                    offset=start_bit,
                )
                a_sel = a_packed & select[None, :, :]
                for c in range(n_chan):
                    gated = a_sel ^ w_sel[c][None, :, :]
                    acc = np.bitwise_or.reduce(gated, axis=1)
                    counts[sl, c] += packed_popcount(acc, axis=-1)
    return counts
