"""Vectorized bitstream kernels for the functional simulator.

The hot path of SC simulation is: encode operands to bitstreams, AND the
pairs, reduce across the fan-in, and count.  Everything here works on
bit-packed arrays (8 clocks per byte) to keep layer-scale simulation
tractable — the paper notes "SC is extremely slow to accurately simulate
in software"; packing and popcount make it merely slow.
"""

from __future__ import annotations

import numpy as np

from ..core.sng import StochasticNumberGenerator

__all__ = ["popcount_packed", "encode_packed", "split_or_matmul_counts",
           "bipolar_mux_matmul_counts", "encode_split_weight_streams",
           "encode_bipolar_weight_stream"]

_POPCOUNT_TABLE = np.array([bin(i).count("1") for i in range(256)],
                           dtype=np.uint16)


def popcount_packed(packed: np.ndarray, axis: int = -1) -> np.ndarray:
    """Total set bits along ``axis`` of a bit-packed array."""
    if hasattr(np, "bitwise_count"):
        counts = np.bitwise_count(packed)
    else:  # numpy < 2.0
        counts = _POPCOUNT_TABLE[packed]
    return counts.sum(axis=axis, dtype=np.int64)


def encode_packed(values: np.ndarray, length: int, bits: int, scheme: str,
                  seed: int) -> np.ndarray:
    """Encode probabilities to bit-packed streams.

    Returns shape ``values.shape + (ceil(length / 8),)``.
    """
    sng = StochasticNumberGenerator(length, bits=bits, scheme=scheme, seed=seed)
    return np.packbits(sng.generate(values), axis=-1)


def encode_split_weight_streams(weights: np.ndarray, *, length: int,
                                bits: int, scheme: str, seed: int) -> tuple:
    """Pre-encode the two split-unipolar weight phase streams.

    Weight streams are constant for a fixed ``(length, bits, scheme,
    seed)``, so callers running many forward passes encode them once and
    pass the result to :func:`split_or_matmul_counts` via
    ``weight_streams``.  Returns a 2-tuple of ``(w_part, w_packed)``
    pairs — the up (positive) and down (negative) phase — bit-identical
    to what the matmul would generate internally.
    """
    weights = np.asarray(weights, dtype=np.float64)
    phases = []
    for phase, w_part in ((0, np.maximum(weights, 0.0)),
                          (1, np.maximum(-weights, 0.0))):
        w_packed = encode_packed(w_part, length, bits, scheme,
                                 seed=seed + 7_368_787 * (phase + 1))
        phases.append((w_part, w_packed))
    return tuple(phases)


def encode_bipolar_weight_stream(weights: np.ndarray, *, length: int,
                                 bits: int, scheme: str,
                                 seed: int) -> np.ndarray:
    """Pre-encode the bipolar weight streams for the XNOR/MUX datapath.

    Bit-identical to the encoding :func:`bipolar_mux_matmul_counts`
    performs internally; pass the result back via ``weight_stream``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    return encode_packed((weights + 1.0) / 2.0, length, bits, scheme,
                         seed=seed + 7_368_787)


def bipolar_mux_matmul_counts(acts: np.ndarray, weights: np.ndarray, *,
                              length: int, bits: int, scheme: str, seed: int,
                              chunk_positions: int = 256,
                              weight_stream: np.ndarray = None) -> np.ndarray:
    """Bitstream-exact *bipolar* matrix multiply with MUX accumulation.

    This is the datapath of prior SC accelerators (SC-DCNN, HEIF, ...):
    operands encoded bipolar (``P(1) = (v+1)/2``), XNOR multipliers, and a
    k:1 multiplexer performing scaled addition.  The returned ``(P, C)``
    counts are ones-counts of the MUX output stream; decoding
    ``2*counts/length - 1`` estimates ``mean_i(a_i * w_i)`` — i.e. the
    sum *divided by the fan-in*, the scaling loss that motivates
    ACOUSTIC's OR-unipolar design.

    ``acts`` in [0, 1] (post-ReLU), ``weights`` in [-1, 1].
    """
    acts = np.asarray(acts, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if acts.ndim != 2 or weights.ndim != 2 or acts.shape[1] != weights.shape[1]:
        raise ValueError("acts must be (P, K) and weights (C, K)")
    n_pos, fan_in = acts.shape
    n_chan = weights.shape[0]
    counts = np.zeros((n_pos, n_chan), dtype=np.int64)
    if weight_stream is None:
        weight_stream = encode_bipolar_weight_stream(
            weights, length=length, bits=bits, scheme=scheme, seed=seed
        )
    w_packed = weight_stream
    if w_packed.shape[:2] != (n_chan, fan_in):
        raise ValueError("weight_stream does not match the weight shape")
    # The select stream's zero pad bits also mask the XNOR's inverted
    # padding, so partial final bytes stay clean.
    select = _mux_select_matrix(fan_in, length, seed + 104_729)
    for start in range(0, n_pos, chunk_positions):
        sl = slice(start, min(start + chunk_positions, n_pos))
        a_packed = encode_packed(
            (acts[sl] + 1.0) / 2.0, length, bits, scheme,
            seed=seed + 15_485_863 + 104_651 * start,
        )
        for c in range(n_chan):
            # XNOR product streams, then the MUX picks one per clock.
            prods = ~(a_packed ^ w_packed[c][None, :, :])
            gated = prods & select[None, :, :]
            acc = np.bitwise_or.reduce(gated, axis=1)
            counts[sl, c] += popcount_packed(acc, axis=-1)
    return counts


def _mux_select_matrix(fan_in: int, length: int, seed: int) -> np.ndarray:
    """One-hot (fan_in, length) selection for MUX accumulation, packed."""
    rng = np.random.default_rng(seed)
    select = rng.integers(0, fan_in, size=length)
    onehot = (np.arange(fan_in)[:, None] == select[None, :]).astype(np.uint8)
    return np.packbits(onehot, axis=-1)


def split_or_matmul_counts(acts: np.ndarray, weights: np.ndarray, *,
                           length: int, bits: int, scheme: str, seed: int,
                           accumulator: str = "or",
                           chunk_positions: int = 256,
                           weight_streams: tuple = None) -> np.ndarray:
    """Bitstream-exact split-unipolar matrix multiply.

    Parameters
    ----------
    acts:
        ``(P, K)`` activation values in [0, 1] (P output positions, K
        fan-in).
    weights:
        ``(C, K)`` signed weights in [-1, 1] (C output channels).
    length:
        Per-phase stream length in clocks.
    accumulator:
        ``"or"`` — OR-reduce product streams (ACOUSTIC);
        ``"apc"`` — exact popcount across fan-in (binary accumulation);
        ``"mux"`` — stream-level k:1 multiplexing (scaled addition).
    weight_streams:
        Optional pre-encoded phase streams from
        :func:`encode_split_weight_streams` (same ``length``/``bits``/
        ``scheme``/``seed``); skips the per-call weight encoding.

    Returns
    -------
    ``(P, C)`` signed counter values: up-phase count minus down-phase
    count.  Divide by ``length`` to decode (for "mux", multiply by the
    fan-in as well to undo the scaling).
    """
    acts = np.asarray(acts, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if acts.ndim != 2 or weights.ndim != 2 or acts.shape[1] != weights.shape[1]:
        raise ValueError("acts must be (P, K) and weights (C, K)")
    n_pos, fan_in = acts.shape
    n_chan = weights.shape[0]
    counts = np.zeros((n_pos, n_chan), dtype=np.int64)

    if weight_streams is None:
        # Weight streams: one lane per (channel, k) element, regenerated
        # per phase with an independent seed space.
        weight_streams = encode_split_weight_streams(
            weights, length=length, bits=bits, scheme=scheme, seed=seed
        )
    for phase, (w_part, w_packed) in enumerate(weight_streams):
        if w_packed.shape[:2] != (n_chan, fan_in):
            raise ValueError("weight_streams do not match the weight shape")
        sign = 1 if phase == 0 else -1
        # Lanes whose weight component is zero (opposite sign, or a true
        # zero weight) carry all-zero streams and cannot set an OR output
        # bit, so they are skipped — the same operand gating that keeps
        # idle hardware lanes from switching.
        active_lanes = [np.flatnonzero(w_part[c] > 0) for c in range(n_chan)]
        if accumulator == "mux":
            select = _mux_select_matrix(fan_in, length,
                                        seed + 104_729 * (phase + 1))
        for start in range(0, n_pos, chunk_positions):
            sl = slice(start, min(start + chunk_positions, n_pos))
            a_packed = encode_packed(
                acts[sl], length, bits, scheme,
                # Distinct lanes per position chunk keep patch streams
                # decorrelated from each other and from the weights.
                seed=seed + 15_485_863 * (phase + 1) + 104_651 * start,
            )
            # a_packed: (p, K, B); w_packed: (C, K, B).
            if accumulator == "or":
                for c in range(n_chan):
                    lanes = active_lanes[c]
                    if lanes.size == 0:
                        continue
                    prods = a_packed[:, lanes, :] & w_packed[c, lanes, :]
                    acc = np.bitwise_or.reduce(prods, axis=1)
                    counts[sl, c] += sign * popcount_packed(acc, axis=-1)
            elif accumulator == "apc":
                for c in range(n_chan):
                    lanes = active_lanes[c]
                    if lanes.size == 0:
                        continue
                    prods = a_packed[:, lanes, :] & w_packed[c, lanes, :]
                    counts[sl, c] += sign * popcount_packed(
                        prods, axis=(-2, -1)
                    )
            elif accumulator == "mux":
                for c in range(n_chan):
                    prods = a_packed & w_packed[c][None, :, :]
                    gated = prods & select[None, :, :]
                    acc = np.bitwise_or.reduce(gated, axis=1)
                    counts[sl, c] += sign * popcount_packed(acc, axis=-1)
            else:
                raise ValueError(f"unknown accumulator {accumulator!r}")
    return counts
