"""Cycle-by-cycle reference simulator for differential testing.

The production engine (:mod:`repro.simulator.engine`) is heavily
vectorized over bit-packed arrays; this module re-implements the same
split-unipolar MAC semantics the *obvious* way — one clock at a time,
one gate at a time — so the two can be checked against each other
bit-exactly.  It is orders of magnitude slower and only suitable for
tiny operands, which is exactly its job.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import make_source

__all__ = ["ReferenceSplitUnipolarMac"]


class ReferenceSplitUnipolarMac:
    """Gate-level split-unipolar MAC matching the packed engine.

    Reproduces :func:`repro.simulator.engine.split_or_matmul_counts`
    (accumulator ``"or"``) bit-for-bit: identical SNG seeds and lane
    assignment, but with explicit per-clock gate evaluation.
    """

    def __init__(self, length: int, bits: int = 8, scheme: str = "lfsr",
                 seed: int = 1):
        self.length = length
        self.bits = bits
        self.scheme = scheme
        self.seed = seed

    def _streams(self, values: np.ndarray, seed: int) -> np.ndarray:
        """Generate weight streams exactly like the engine's encode path.

        Weights get one SNG lane per element (``encode_packed``).
        """
        source = make_source(self.scheme, bits=self.bits, seed=seed)
        flat = values.reshape(-1)
        levels = 1 << self.bits
        thresholds = source.thresholds(flat.size, self.length)
        targets = np.round(flat * levels).astype(np.uint32)
        bits = np.empty((flat.size, self.length), dtype=np.uint8)
        for lane in range(flat.size):
            for t in range(self.length):
                bits[lane, t] = 1 if thresholds[lane, t] < targets[lane] \
                    else 0
        return bits.reshape(values.shape + (self.length,))

    def _act_streams(self, values: np.ndarray, seed: int) -> np.ndarray:
        """Generate activation streams for one chunk, shared-lane style.

        The engine time-multiplexes a bank of ``fan_in`` SNG lanes
        across the chunk's positions, rotating the assignment per
        position (element ``k`` of position ``p`` reads lane
        ``(p + k) % fan_in``) so lane/weight pairing bias is not
        repeated systematically at every position.
        """
        n_pos, fan_in = values.shape
        source = make_source(self.scheme, bits=self.bits, seed=seed)
        levels = 1 << self.bits
        thresholds = source.thresholds(fan_in, self.length)
        targets = np.round(values * levels).astype(np.uint32)
        bits = np.empty((n_pos, fan_in, self.length), dtype=np.uint8)
        for p in range(n_pos):
            for k in range(fan_in):
                lane = (p + k) % fan_in
                for t in range(self.length):
                    bits[p, k, t] = 1 if thresholds[lane, t] < targets[p, k] \
                        else 0
        return bits

    def matmul_counts(self, acts: np.ndarray, weights: np.ndarray,
                      chunk_positions: int = 256) -> np.ndarray:
        """Signed counter values, clock by clock.

        ``acts``: (P, K) in [0, 1]; ``weights``: (C, K) in [-1, 1].
        ``chunk_positions`` must match the engine call being checked
        (it determines the activation lane seeding).
        """
        acts = np.asarray(acts, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        n_pos, fan_in = acts.shape
        n_chan = weights.shape[0]
        counts = np.zeros((n_pos, n_chan), dtype=np.int64)

        for phase, w_part in ((0, np.maximum(weights, 0.0)),
                              (1, np.maximum(-weights, 0.0))):
            sign = 1 if phase == 0 else -1
            w_streams = self._streams(
                w_part, seed=self.seed + 7_368_787 * (phase + 1)
            )
            for start in range(0, n_pos, chunk_positions):
                stop = min(start + chunk_positions, n_pos)
                a_streams = self._act_streams(
                    acts[start:stop],
                    seed=self.seed + 15_485_863 * (phase + 1)
                    + 104_651 * start,
                )
                for p in range(stop - start):
                    for c in range(n_chan):
                        # One up/down counter, one clock at a time.
                        for t in range(self.length):
                            wired_or = 0
                            for k in range(fan_in):
                                # Operand gating: a zero weight
                                # component keeps the AND silent.
                                if w_part[c, k] == 0.0:
                                    continue
                                if a_streams[p, k, t] and \
                                        w_streams[c, k, t]:
                                    wired_or = 1
                                    break
                            counts[start + p, c] += sign * wired_or
        return counts
