"""Bitstream-exact functional simulator for SC CNN inference.

Mirrors the paper's "custom SC functional simulator": given a trained
model, a test set and an SC configuration (stream length, RNG scheme,
accumulator), it computes test accuracy by actually generating, ANDing,
OR-reducing and counting bitstreams.
"""

from .config import SCConfig
from .engine import (ENCODE_CACHE, KERNEL_STATS, KERNELS,
                     ActivationEncodeCache, KernelStats,
                     bipolar_mux_matmul_counts, default_kernel,
                     encode_bipolar_weight_stream, encode_packed,
                     encode_split_weight_streams, popcount_packed,
                     split_or_matmul_counts)
from .fixedpoint import FixedPointNetwork
from .layers import (SCAvgPool, SCConv2d, SCFlatten, SCLinear, SCReLU,
                     SCResidual, WeightStreamCache)
from .metrics import (confusion_matrix, evaluate_classifier,
                      per_class_accuracy, top_k_accuracy)
from .network import SCNetwork, sc_graph_of
from .progressive import ProgressiveExecutor, ProgressiveResult
from .reference import ReferenceSplitUnipolarMac

__all__ = [
    "SCConfig",
    "ENCODE_CACHE", "KERNEL_STATS", "KERNELS", "ActivationEncodeCache",
    "KernelStats", "bipolar_mux_matmul_counts", "default_kernel",
    "encode_bipolar_weight_stream", "encode_packed",
    "encode_split_weight_streams", "popcount_packed",
    "split_or_matmul_counts",
    "FixedPointNetwork",
    "SCAvgPool", "SCConv2d", "SCFlatten", "SCLinear", "SCReLU", "SCResidual",
    "WeightStreamCache",
    "SCNetwork", "sc_graph_of",
    "ProgressiveExecutor", "ProgressiveResult",
    "confusion_matrix", "evaluate_classifier", "per_class_accuracy",
    "top_k_accuracy",
    "ReferenceSplitUnipolarMac",
]
