"""Minimal ASCII line plots for benchmark figures.

The benchmark harness reproduces the paper's *figures* as data tables;
this module adds a terminal rendering of the curve shapes so a reader
can eyeball, e.g., Fig. 4's memory-bound plateaus without matplotlib.
"""

from __future__ import annotations

import math

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(series: dict, width: int = 64, height: int = 16,
               title: str = None, x_label: str = "", y_label: str = "",
               logy: bool = False) -> str:
    """Render ``{name: [(x, y), ...]}`` as an ASCII chart.

    Each series gets its own marker; overlapping points show the later
    series' marker.  ``logy`` plots log10(y).
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [math.log10(p[1]) if logy else p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            yy = math.log10(y) if logy else y
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((yy - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{10**y_hi:.3g}" if logy else f"{y_hi:.3g}"
    y_lo_label = f"{10**y_lo:.3g}" if logy else f"{y_lo:.3g}"
    gutter = max(len(y_hi_label), len(y_lo_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_hi_label
        elif row_index == height - 1:
            label = y_lo_label
        elif row_index == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{gutter}} |{''.join(row)}|")
    lines.append(f"{'':>{gutter}} +{'-' * width}+")
    x_axis = f"{x_lo:.3g}{x_label:^{max(0, width - 12)}}{x_hi:.3g}"
    lines.append(f"{'':>{gutter}}  {x_axis}")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{'':>{gutter}}  legend: {legend}")
    return "\n".join(lines)
