"""Monte-Carlo studies and report formatting."""

from .allocation import (AllocationResult, AllocationStep,
                         allocate_stream_lengths)
from .asciiplot import ascii_plot
from .faults import (FaultStudy, binary_fault_error, flip_binary_words,
                     flip_stream_bits, network_fault_study,
                     stream_fault_error)
from .montecarlo import (AccumulationStudy, RepresentationStudy,
                         accumulation_error_study,
                         representation_error_study)
from .snr import LayerSnr, layer_snr_profile
from .reporting import PaperComparison, format_ratio, format_table

__all__ = [
    "AllocationResult", "AllocationStep", "allocate_stream_lengths",
    "ascii_plot",
    "AccumulationStudy", "RepresentationStudy",
    "accumulation_error_study", "representation_error_study",
    "PaperComparison", "format_ratio", "format_table",
    "LayerSnr", "layer_snr_profile",
    "FaultStudy", "binary_fault_error", "flip_binary_words",
    "flip_stream_bits", "network_fault_study", "stream_fault_error",
]
