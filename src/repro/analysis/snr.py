"""Per-layer signal-to-noise analysis of SC inference.

Explains *where* stochastic noise enters a network: for each layer of a
converted :class:`~repro.simulator.network.SCNetwork`, compares the SC
layer outputs against the trained network's float forward pass and
reports signal power, noise power and SNR.  This is the tool that
surfaced the training insights recorded in EXPERIMENTS.md (e.g. deep
layers of OR networks attenuate signal until stream noise dominates
unless noise-aware training is used).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir.passes import fusion_groups
from ..simulator.config import SCConfig
from ..simulator.network import SCNetwork
from ..training.network import Sequential, graph_of

__all__ = ["LayerSnr", "layer_snr_profile"]


@dataclass
class LayerSnr:
    """Signal/noise statistics of one SC layer output."""

    index: int
    layer_type: str
    signal_rms: float
    noise_rms: float

    @property
    def snr(self) -> float:
        """Linear signal-to-noise ratio (inf for noise-free layers)."""
        if self.noise_rms == 0:
            return float("inf")
        return self.signal_rms / self.noise_rms

    @property
    def snr_db(self) -> float:
        return 10 * np.log10(self.snr) if np.isfinite(self.snr) else \
            float("inf")


def layer_snr_profile(network: Sequential, x: np.ndarray,
                      config: SCConfig = None) -> list:
    """Per-layer SNR of the SC simulation against the float forward.

    Runs the trained network layer by layer in float, and the converted
    SC network layer by layer on bitstreams, feeding each SC layer the
    *float* input so errors do not compound — the reported noise is each
    layer's own contribution.
    """
    config = config if config is not None else SCConfig()
    sc_net = SCNetwork.from_trained(network, config)

    # Build the float reference activations at SC-layer granularity.
    # SC layers fuse conv+pool; the canonical pass pipeline owns that
    # decision, so ask it which source-layer ranges each fused SC-level
    # node (sc_net.graph) covers instead of re-deriving the collapse.
    groups = fusion_groups(graph_of(network).nodes)
    if len(groups) != len(sc_net.layers):
        raise ValueError(
            "float/SC stage mismatch: the fused SC graph has "
            f"{len(sc_net.layers)} layers but the fusion grouping of the "
            f"trained model yields {len(groups)} stages"
        )
    float_inputs = []
    current = np.asarray(x, dtype=np.float64)
    for start, stop in groups:
        float_inputs.append(current)
        for layer in network.layers[start:stop]:
            current = layer.forward(current, training=False)

    profile = []
    reference = np.asarray(x, dtype=np.float64)
    for index, sc_layer in enumerate(sc_net.layers):
        float_in = float_inputs[index]
        sc_out = sc_layer.forward(float_in, config, index)
        # Recompute the float output of this (possibly fused) stage.
        float_out = _float_stage_output(network, index, float_in,
                                        float_inputs, reference)
        noise = sc_out - float_out
        profile.append(LayerSnr(
            index=index,
            layer_type=type(sc_layer).__name__,
            signal_rms=float(np.sqrt(np.mean(float_out**2))),
            noise_rms=float(np.sqrt(np.mean(noise**2))),
        ))
    return profile


def _float_stage_output(network, index, float_in, float_inputs, x0):
    """Float output of SC stage ``index`` — the next stage's input, or
    the final forward output for the last stage."""
    if index + 1 < len(float_inputs):
        return float_inputs[index + 1]
    return network.forward(np.asarray(x0, dtype=np.float64), training=False)
