"""ASCII report tables for the benchmark harness."""

from __future__ import annotations

__all__ = ["format_table", "format_ratio", "PaperComparison"]


def format_table(headers, rows, title: str = None) -> str:
    """Render an aligned ASCII table.

    ``rows`` is an iterable of sequences; cells are stringified with
    ``format_cell``.  Numeric cells are right-aligned.
    """
    rendered = [[_format_cell(c) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{cell:.3g}"
        if magnitude >= 100:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_ratio(measured: float, paper: float) -> str:
    """Render measured-vs-paper agreement as a multiplier string."""
    if paper is None or paper == 0:
        return "n/a"
    return f"{measured / paper:.2f}x"


class PaperComparison:
    """Collects (quantity, paper, measured) triples and renders a table."""

    def __init__(self, title: str):
        self.title = title
        self.rows = []

    def add(self, quantity: str, paper, measured) -> None:
        self.rows.append((quantity, paper, measured))

    def render(self) -> str:
        table_rows = [
            (q, p if p is not None else "n/a", m,
             format_ratio(m, p) if isinstance(m, (int, float)) and
             isinstance(p, (int, float)) else "")
            for q, p, m in self.rows
        ]
        return format_table(
            ["quantity", "paper", "measured", "measured/paper"],
            table_rows, title=self.title,
        )
