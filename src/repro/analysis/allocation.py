"""Mixed stream-precision allocation (extension study).

Because ACOUSTIC converts every layer's outputs to binary, the stream
length is a *per-layer* knob, not a global one.  Layers differ wildly in
how much latency they cost per stream bit (a compute-bound conv scales
linearly; the FC layers are DMA-shadowed) and in how noise-sensitive
they are, so a uniform stream length is generally not latency-optimal.

This module implements a greedy accuracy-aware allocator: starting from
a short uniform allocation, repeatedly double the stream length of the
layer with the worst measured SNR-per-latency-cost until the SC accuracy
reaches the target (or lengths cap out).  The result feeds
``SCConfig(layer_phase_lengths=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simulator.config import SCConfig
from ..simulator.network import SCNetwork
from .snr import layer_snr_profile

__all__ = ["AllocationStep", "AllocationResult", "allocate_stream_lengths"]


@dataclass
class AllocationStep:
    """One greedy refinement step."""

    layer_index: int
    new_phase_length: int
    accuracy: float


@dataclass
class AllocationResult:
    """Final allocation plus its refinement history."""

    layer_phase_lengths: dict
    accuracy: float
    steps: list = field(default_factory=list)

    def mean_phase_length(self) -> float:
        lengths = list(self.layer_phase_lengths.values())
        return float(np.mean(lengths)) if lengths else 0.0


def _stochastic_layers(sc_net: SCNetwork):
    return [i for i, layer in enumerate(sc_net.layers)
            if type(layer).__name__ in ("SCConv2d", "SCLinear")]


def allocate_stream_lengths(network, x_calib, y_calib, *,
                            target_accuracy: float,
                            start_phase: int = 16,
                            max_phase: int = 256,
                            base_config: SCConfig = None,
                            max_steps: int = 16) -> AllocationResult:
    """Greedy per-layer stream-length allocation.

    Parameters
    ----------
    network:
        The trained :class:`~repro.training.network.Sequential`.
    x_calib, y_calib:
        A small calibration set (accuracy probe).
    target_accuracy:
        Stop once the SC accuracy on the calibration set reaches this.
    start_phase / max_phase:
        Initial and maximum per-layer phase length (powers of two).
    """
    base = base_config if base_config is not None else SCConfig()
    probe = SCNetwork.from_trained(network, base)
    stochastic = _stochastic_layers(probe)
    lengths = {i: start_phase for i in stochastic}

    def current_config():
        return SCConfig(
            phase_length=base.phase_length, bits=base.bits,
            scheme=base.scheme, accumulator=base.accumulator,
            computation_skipping=base.computation_skipping,
            seed=base.seed, representation=base.representation,
            layer_phase_lengths=dict(lengths),
        )

    def measure():
        sc = SCNetwork.from_trained(network, current_config())
        return sc.accuracy(x_calib, y_calib)

    steps = []
    accuracy = measure()
    while accuracy < target_accuracy and len(steps) < max_steps:
        upgradable = [i for i in stochastic if lengths[i] < max_phase]
        if not upgradable:
            break
        # Pick the layer whose own noise contribution is worst relative
        # to the latency cost of doubling it (cost ~ current length).
        profile = layer_snr_profile(network, x_calib[:4], current_config())
        def badness(i):
            noise = profile[i].noise_rms
            return noise / max(lengths[i], 1)
        worst = max(upgradable, key=badness)
        lengths[worst] *= 2
        accuracy = measure()
        steps.append(AllocationStep(layer_index=worst,
                                    new_phase_length=lengths[worst],
                                    accuracy=accuracy))
    return AllocationResult(layer_phase_lengths=dict(lengths),
                            accuracy=accuracy, steps=steps)
