"""Soft-error (bit-flip) robustness study: stochastic vs binary encoding.

A classic stochastic-computing argument the paper inherits from Gaines:
every bit of a stochastic stream carries equal (1/n) weight, so a flipped
bit perturbs the value by at most 1/n, while a flipped bit in a binary
word can be the MSB.  This module injects bit flips into both encodings
and measures the damage, at matched flip rates.

- :func:`stream_fault_error` — flip stream bits with probability ``p``,
  measure value perturbation (analytic expectation: at density ``d`` the
  mean value shift is ``p * (1 - 2d)`` with bounded variance).
- :func:`binary_fault_error` — flip bits of 8-bit fixed-point words with
  the same per-bit probability, measure value perturbation.
- :func:`network_fault_study` — end-to-end: SC inference with stream
  flips vs 8-bit inference with word flips.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.sng import StochasticNumberGenerator

__all__ = [
    "flip_stream_bits",
    "flip_binary_words",
    "stream_fault_error",
    "binary_fault_error",
    "FaultStudy",
    "network_fault_study",
]


def flip_stream_bits(streams: np.ndarray, rate: float,
                     rng: np.random.Generator) -> np.ndarray:
    """Flip each stream bit independently with probability ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("flip rate must be in [0, 1]")
    flips = (rng.random(streams.shape) < rate).astype(streams.dtype)
    return streams ^ flips


def flip_binary_words(values: np.ndarray, rate: float,
                      rng: np.random.Generator, bits: int = 8) -> np.ndarray:
    """Flip each bit of the ``bits``-bit fixed-point words encoding
    ``values`` (in [0, 1]) independently with probability ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("flip rate must be in [0, 1]")
    levels = (1 << bits) - 1
    words = np.round(np.asarray(values, dtype=np.float64) * levels).astype(
        np.int64
    )
    for bit in range(bits):
        flips = rng.random(words.shape) < rate
        words = np.where(flips, words ^ (1 << bit), words)
    return words / levels


def stream_fault_error(value: float, rate: float, length: int = 256,
                       trials: int = 200, seed: int = 0) -> float:
    """RMS value error of a faulted stochastic stream."""
    rng = np.random.default_rng(seed)
    sng = StochasticNumberGenerator(length, scheme="lfsr", seed=seed + 1)
    streams = sng.generate(np.full(trials, value))
    faulted = flip_stream_bits(streams, rate, rng)
    return float(np.sqrt(np.mean((faulted.mean(axis=-1) - value) ** 2)))


def binary_fault_error(value: float, rate: float, bits: int = 8,
                       trials: int = 200, seed: int = 0) -> float:
    """RMS value error of faulted fixed-point words."""
    rng = np.random.default_rng(seed)
    faulted = flip_binary_words(np.full(trials, value), rate, rng, bits=bits)
    return float(np.sqrt(np.mean((faulted - value) ** 2)))


@dataclass
class FaultStudy:
    """End-to-end fault-injection result at one flip rate."""

    rate: float
    sc_accuracy: float
    fixed_accuracy: float


def network_fault_study(network, x, y, rates, phase_length: int = 64,
                        seed: int = 0) -> list:
    """Accuracy under matched per-bit flip rates: SC streams vs 8-bit
    activations.

    SC faults perturb the *conv input columns* at the value level by the
    analytic stream-fault model (mean |shift| = rate * |1 - 2d|, std
    sqrt(rate/n)-scale), which keeps the study tractable; binary faults
    flip real bits of the 8-bit activations.  Both pipelines share the
    same trained network.
    """
    from ..simulator import FixedPointNetwork, SCConfig, SCNetwork

    rng = np.random.default_rng(seed)
    results = []
    for rate in rates:
        # SC path: inject stream flips into the *input* encoding (the
        # dominant exposure — every layer regenerates streams).
        sng = StochasticNumberGenerator(phase_length, scheme="lfsr",
                                        seed=seed + 1)
        streams = sng.generate(np.asarray(x, dtype=np.float64))
        faulted = flip_stream_bits(streams, rate, rng)
        x_sc = faulted.mean(axis=-1)
        sc_net = SCNetwork.from_trained(
            network, SCConfig(phase_length=phase_length, seed=seed + 2)
        )
        sc_acc = sc_net.accuracy(x_sc, y)

        # Binary path: flip bits of the 8-bit input words.
        x_fixed = flip_binary_words(np.asarray(x, dtype=np.float64), rate,
                                    rng)
        fixed_acc = FixedPointNetwork(network).accuracy(x_fixed, y)
        results.append(FaultStudy(rate=rate, sc_accuracy=sc_acc,
                                  fixed_accuracy=fixed_acc))
    return results
