"""Monte-Carlo error studies for SC primitives (paper Sec. II-A/B)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.accumulate import OrAccumulator, make_accumulator
from ..core.errors import rms_error_bipolar, rms_error_unipolar
from ..core.sng import StochasticNumberGenerator

__all__ = [
    "RepresentationStudy",
    "representation_error_study",
    "AccumulationStudy",
    "accumulation_error_study",
]


@dataclass
class RepresentationStudy:
    """Empirical vs analytic representation error at one stream length."""

    length: int
    unipolar_rms: float
    bipolar_rms: float
    unipolar_rms_analytic: float
    bipolar_rms_analytic: float

    @property
    def bipolar_penalty(self) -> float:
        """Measured error ratio bipolar / unipolar (>= sqrt(2) expected)."""
        return self.bipolar_rms / self.unipolar_rms


def representation_error_study(lengths, values=None, trials: int = 200,
                               seed: int = 0) -> list:
    """Measure unipolar vs bipolar RMS encoding error per stream length.

    Reproduces the Sec. II-A claim that unipolar needs >= 2x shorter
    streams than bipolar for the same representational error.
    """
    if values is None:
        values = np.linspace(0.05, 0.95, 19)
    values = np.asarray(values, dtype=np.float64)
    results = []
    for length in lengths:
        uni_sq = []
        bip_sq = []
        for trial in range(trials):
            sng = StochasticNumberGenerator(length, scheme="random",
                                            seed=seed + trial)
            uni = sng.generate(values).mean(axis=-1)
            uni_sq.append((uni - values) ** 2)
            bip_stream = sng.generate((values + 1) / 2)
            bip = 2 * bip_stream.mean(axis=-1) - 1
            bip_sq.append((bip - values) ** 2)
        results.append(RepresentationStudy(
            length=length,
            unipolar_rms=float(np.sqrt(np.mean(uni_sq))),
            bipolar_rms=float(np.sqrt(np.mean(bip_sq))),
            unipolar_rms_analytic=float(
                np.sqrt(np.mean(rms_error_unipolar(values, length) ** 2))
            ),
            bipolar_rms_analytic=float(
                np.sqrt(np.mean(rms_error_bipolar(values, length) ** 2))
            ),
        ))
    return results


@dataclass
class AccumulationStudy:
    """Accumulated-output error statistics for one accumulator."""

    accumulator: str
    fan_in: int
    length: int
    mean_abs_error: float
    rms_error: float
    trials: int
    errors: np.ndarray = field(repr=False, default=None)


def accumulation_error_study(fan_in: int = 2304, length: int = 256,
                             trials: int = 100, accumulators=("or", "mux"),
                             nonzero_fraction: float = None,
                             target_sum: float = 1.0,
                             seed: int = 0) -> dict:
    """Monte-Carlo comparison of wide-accumulation strategies.

    Mirrors the paper's Sec. II-B analysis: a ``3x3x256 = 2304``-wide
    accumulation where OR shows roughly an order of magnitude less
    absolute error than MUX.  The workload models a trained conv layer:
    activations uniform in [0, 1], weights sparse and small (a dense
    2304-wide accumulation with ``sum(a*w) ~ 1`` needs sub-quantization
    weights, so trained 8-bit layers are necessarily sparse), products
    formed by ANDing independently generated activation and weight
    streams.

    Errors are measured in *sum units* — the quantity the accumulation
    is supposed to produce: the OR density is linearized through
    ``-log(1-y)`` (its systematic saturation is well-defined and
    training absorbs it; only the stochastic error remains), the MUX
    density is rescaled by the fan-in, and APC counts are averaged.
    """
    if nonzero_fraction is None:
        # Enough nonzero weights that an 8-bit grid can express them
        # while the expected sum stays near target_sum.
        nonzero_fraction = min(1.0, 16 * target_sum * 256 / fan_in / 16)
    rng = np.random.default_rng(seed)
    results = {}
    n_nz = max(1, int(fan_in * nonzero_fraction))
    w_max = min(1.0, 2 * target_sum / (0.5 * n_nz))
    for name in accumulators:
        acc = make_accumulator(name, seed=seed)
        errors = np.empty(trials)
        for t in range(trials):
            acts = rng.uniform(0.0, 1.0, size=fan_in)
            weights = np.zeros(fan_in)
            nz = rng.choice(fan_in, size=n_nz, replace=False)
            weights[nz] = rng.uniform(1 / 256, w_max, size=n_nz)
            act_sng = StochasticNumberGenerator(length, scheme="lfsr",
                                                seed=seed + 7919 * t + 1)
            wgt_sng = StochasticNumberGenerator(
                length, scheme="lfsr", seed=seed + 104729 * t + 50021
            )
            streams = act_sng.generate(acts) & wgt_sng.generate(weights)
            values = acts * weights
            true_sum = float(values.sum())
            raw = acc.decode(acc.reduce_streams(streams), fan_in)
            if name == "or":
                measured = float(OrAccumulator.linearize(raw))
                expected = float(
                    OrAccumulator.linearize(acc.expected(values))
                )
            elif name == "mux":
                measured = float(raw)
                expected = true_sum
            else:  # apc
                measured = float(raw)
                expected = true_sum
            errors[t] = measured - expected
        results[name] = AccumulationStudy(
            accumulator=name, fan_in=fan_in, length=length,
            mean_abs_error=float(np.abs(errors).mean()),
            rms_error=float(np.sqrt((errors**2).mean())),
            trials=trials, errors=errors,
        )
    return results
