"""Traffic-replay load benchmark for the serving layer.

Generates a seeded request trace (Poisson arrival offsets + batch
sizes), spins up a :class:`~repro.serve.Server` in-process on an
ephemeral port, and replays the trace against it in one of two modes:

- **closed loop** — ``concurrency`` workers each hold one connection
  and replay trace entries back-to-back (a new request departs only
  when the previous response lands).  Measures the latency the system
  sustains at its own pace; sheds should be ~zero.
- **open loop** — arrivals fire at their trace timestamps regardless of
  outstanding responses (the honest overload model: real clients do not
  politely wait).  When the offered rate exceeds capacity the server's
  admission control sheds with backpressure responses — the shed rate
  is a first-class result, not an error.

Each run reports p50/p95/p99/mean/max latency over completed requests,
achieved throughput, and the shed/deadline/error split;
:func:`write_bench_artifact` persists runs as ``BENCH_6.json`` next to
``BENCH_2.json``.  Used by ``python -m repro loadtest`` and the CI
serve-smoke job.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from ..analysis import format_table
from .client import Client
from .config import ServeConfig
from .server import Server

__all__ = ["LoadtestResult", "format_loadtest", "generate_trace",
           "run_loadtest", "write_bench_artifact"]


def generate_trace(*, duration_s: float, rate_rps: float, batch: int,
                   seed: int = 0) -> list:
    """Seeded Poisson request trace: ``[(offset_s, n_samples), ...]``.

    Inter-arrival gaps are exponential at ``rate_rps``; batch sizes are
    uniform on ``[1, batch]``.  The same seed always replays the same
    traffic, so two servers (or two PRs) see identical offered load.
    """
    rng = np.random.default_rng(seed)
    trace = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate_rps)
        if t >= duration_s:
            return trace
        trace.append((t, int(rng.integers(1, batch + 1))))


@dataclass
class LoadtestResult:
    """Outcome of one load-bench run (all latencies in milliseconds)."""

    network: str
    mode: str
    duration_s: float
    concurrency: int
    offered_rps: float
    batch: int
    phase_length: int
    seed: int
    requests: int = 0
    completed: int = 0
    shed: int = 0
    deadline_expired: int = 0
    errors: int = 0
    shed_reasons: dict = field(default_factory=dict)
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    mean_ms: float = 0.0
    max_ms: float = 0.0
    throughput_rps: float = 0.0
    samples_per_s: float = 0.0
    elapsed_s: float = 0.0
    server: dict = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        data = asdict(self)
        data["shed_rate"] = self.shed_rate
        return data


async def _replay(server: Server, network: str, *, mode: str, trace: list,
                  concurrency: int, deadline_s: float,
                  input_shape: tuple, seed: int) -> list:
    """Drive the trace; returns ``[(outcome, latency_s or None), ...]``.

    ``outcome`` is ``ok`` / ``shed:<reason>`` / ``deadline`` /
    ``error``.  One payload array is reused for every request (values
    do not affect serving cost; the wire size tracks the batch).
    """
    rng = np.random.default_rng(seed + 1)
    payload = rng.uniform(0.0, 1.0, (max(n for _, n in trace),)
                          + input_shape)
    records = []

    async def one(client: Client, n_samples: int) -> None:
        t0 = time.perf_counter()
        try:
            response = await client.predict_raw(
                network, payload[:n_samples], deadline_s=deadline_s
            )
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            records.append(("error", None, n_samples))
            return
        latency = time.perf_counter() - t0
        if response.get("ok"):
            records.append(("ok", latency, n_samples))
        elif response.get("error") == "shed":
            records.append((f"shed:{response.get('reason')}", None,
                            n_samples))
        elif response.get("error") == "deadline":
            records.append(("deadline", None, n_samples))
        else:
            records.append(("error", None, n_samples))

    if mode == "closed":
        queue = asyncio.Queue()
        for entry in trace:
            queue.put_nowait(entry)

        async def worker() -> None:
            async with Client("127.0.0.1", server.port,
                              client_id=f"closed-{id(asyncio.current_task())}"
                              ) as client:
                while True:
                    try:
                        _, n_samples = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
                    await one(client, n_samples)

        await asyncio.gather(*(worker() for _ in range(concurrency)))
        return records

    # Open loop: a free-connection pool; arrivals never wait for each
    # other, so the pool grows to the true in-flight demand.
    pool = []

    async def fire(n_samples: int) -> None:
        if pool:
            client = pool.pop()
        else:
            client = await Client("127.0.0.1", server.port,
                                  client_id="open").connect()
        try:
            await one(client, n_samples)
        finally:
            pool.append(client)

    t_start = time.perf_counter()
    tasks = []
    for offset, n_samples in trace:
        delay = offset - (time.perf_counter() - t_start)
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(fire(n_samples)))
    await asyncio.gather(*tasks)
    for client in pool:
        await client.close()
    return records


async def _run(network: str, *, mode: str, duration_s: float,
               rate_rps: float, concurrency: int, batch: int,
               phase_length: int, seed: int, deadline_s: float,
               config: ServeConfig) -> LoadtestResult:
    trace = generate_trace(duration_s=duration_s, rate_rps=rate_rps,
                           batch=batch, seed=seed)
    if not trace:
        trace = [(0.0, 1)]
    async with Server(config) as server:
        shape = server.registry.input_shape(network)
        t0 = time.perf_counter()
        records = await _replay(
            server, network, mode=mode, trace=trace,
            concurrency=concurrency, deadline_s=deadline_s,
            input_shape=shape, seed=seed,
        )
        elapsed = time.perf_counter() - t0
        metrics = await _server_counters(server)
    latencies = np.array([lat for outcome, lat, _ in records
                          if outcome == "ok"])
    ok_samples = sum(n for outcome, _, n in records if outcome == "ok")
    shed_reasons = {}
    for outcome, _, _ in records:
        if outcome.startswith("shed:"):
            reason = outcome.split(":", 1)[1]
            shed_reasons[reason] = shed_reasons.get(reason, 0) + 1
    result = LoadtestResult(
        network=network, mode=mode, duration_s=duration_s,
        concurrency=concurrency, offered_rps=rate_rps, batch=batch,
        phase_length=phase_length, seed=seed,
        requests=len(records),
        completed=int(latencies.size),
        shed=sum(shed_reasons.values()),
        deadline_expired=sum(1 for o, _, _ in records
                             if o == "deadline"),
        errors=sum(1 for o, _, _ in records if o == "error"),
        shed_reasons=shed_reasons,
        elapsed_s=elapsed,
        server=metrics,
    )
    if latencies.size:
        result.p50_ms = float(np.percentile(latencies, 50) * 1e3)
        result.p95_ms = float(np.percentile(latencies, 95) * 1e3)
        result.p99_ms = float(np.percentile(latencies, 99) * 1e3)
        result.mean_ms = float(latencies.mean() * 1e3)
        result.max_ms = float(latencies.max() * 1e3)
        result.throughput_rps = result.completed / elapsed
        result.samples_per_s = ok_samples / elapsed
    return result


async def _server_counters(server: Server) -> dict:
    counters = dict(server.counters)
    counters["peak_in_flight"] = server.admission.peak_in_flight
    counters["max_queue_depth"] = server.admission.max_depth
    return counters


def run_loadtest(network: str = "mnist_mlp", *, mode: str = "closed",
                 duration_s: float = 5.0, rate_rps: float = 50.0,
                 concurrency: int = 4, batch: int = 4,
                 phase_length: int = 16, seed: int = 0,
                 deadline_s: float = None, workers: int = 2,
                 backend: str = "thread", max_queue_depth: int = 32,
                 quota_rate: float = 0.0) -> LoadtestResult:
    """Self-contained load bench: in-process server, replayed trace.

    ``mode="closed"`` measures sustainable latency (the trace is a work
    queue under a concurrency cap); ``mode="open"`` replays the trace's
    Poisson arrival times on the wall clock, so offered load above
    capacity exercises admission control and the shed path.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"unknown mode {mode!r}; use 'closed' or 'open'")
    from ..runtime import RuntimeConfig
    config = ServeConfig(
        port=0, models=(network,),
        max_queue_depth=max_queue_depth, quota_rate=quota_rate,
        phase_length=phase_length, seed=seed,
        runtime=RuntimeConfig(workers=workers, backend=backend,
                              shard_size=max(1, batch // 2),
                              max_batch=4 * batch, max_wait_s=0.002),
    )
    return asyncio.run(_run(
        network, mode=mode, duration_s=duration_s, rate_rps=rate_rps,
        concurrency=concurrency, batch=batch, phase_length=phase_length,
        seed=seed, deadline_s=deadline_s, config=config,
    ))


def write_bench_artifact(results, path="BENCH_6.json",
                         quick: bool = False) -> pathlib.Path:
    """Persist runs as the BENCH_6 artifact (schema mirrors BENCH_2)."""
    if isinstance(results, LoadtestResult):
        results = [results]
    path = pathlib.Path(path)
    path.write_text(json.dumps({
        "bench": "BENCH_6",
        "title": "serving-layer traffic replay (open/closed loop)",
        "quick": quick,
        "runs": [r.to_dict() for r in results],
    }, indent=2) + "\n")
    return path


def format_loadtest(result: LoadtestResult) -> str:
    """Render one run as the report the CLI prints."""
    rows = [
        ("requests", result.requests),
        ("completed", result.completed),
        ("shed", f"{result.shed} ({result.shed_rate:.1%})"),
        ("deadline expired", result.deadline_expired),
        ("errors", result.errors),
        ("latency p50 [ms]", f"{result.p50_ms:.2f}"),
        ("latency p95 [ms]", f"{result.p95_ms:.2f}"),
        ("latency p99 [ms]", f"{result.p99_ms:.2f}"),
        ("latency mean/max [ms]",
         f"{result.mean_ms:.2f} / {result.max_ms:.2f}"),
        ("throughput [req/s]", f"{result.throughput_rps:.2f}"),
        ("offered [req/s]", f"{result.offered_rps:.2f}"),
        ("peak in-flight",
         f"{result.server.get('peak_in_flight', 0)}"
         f"/{result.server.get('max_queue_depth', 0)}"),
    ]
    if result.shed_reasons:
        rows.append(("shed reasons", ", ".join(
            f"{reason}={count}" for reason, count
            in sorted(result.shed_reasons.items()))))
    return format_table(
        ["metric", "value"], rows,
        title=f"Loadtest — {result.network}, {result.mode} loop, "
              f"{result.duration_s:.0f}s, concurrency "
              f"{result.concurrency}, phase length {result.phase_length}",
    )
