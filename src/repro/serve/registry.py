"""Warm model registry: precompiled plans, lazy load, LRU eviction.

Compiling an :class:`~repro.runtime.ExecutionPlan` pre-encodes every
constant weight bitstream — exactly the work a serving process must not
pay on the request path.  The registry compiles the configured warm set
at startup (so the first request to each warm model is already fast),
loads any other known zoo network on first use, and evicts the
least-recently-used cold models beyond ``max_loaded`` (closing their
runtimes, which drains their batcher and pool).  Warm models are
pinned: they are never evicted.

Registry keys are the :data:`~repro.runtime.BENCH_NETWORKS` zoo names;
each entry owns one :class:`~repro.runtime.InferenceRuntime` built from
the shared :class:`~repro.runtime.RuntimeConfig` template.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict

from .. import obs
from ..runtime import BENCH_NETWORKS, InferenceRuntime, RuntimeConfig
from ..runtime import shm
from ..simulator import SCConfig, SCNetwork

__all__ = ["ModelRegistry"]


class ModelRegistry:
    """Name -> warm :class:`InferenceRuntime`, with LRU bound.

    Thread-safe: construction of a model happens outside the lock (plan
    compilation is seconds of work; holding the lock would serialize
    unrelated lookups), with a per-name event so concurrent first
    requests compile once.
    """

    def __init__(self, warm=("mnist_mlp",), max_loaded: int = 4,
                 phase_length: int = 16, seed: int = 0,
                 runtime_config: RuntimeConfig = None):
        if isinstance(warm, str):
            warm = (warm,)
        unknown = sorted(set(warm) - set(BENCH_NETWORKS))
        if unknown:
            raise KeyError(
                f"unknown warm model(s) {', '.join(unknown)}; known: "
                f"{', '.join(sorted(BENCH_NETWORKS))}"
            )
        if max_loaded < max(1, len(warm)):
            raise ValueError("max_loaded must cover the warm set")
        self.warm = tuple(warm)
        self.max_loaded = max_loaded
        self.phase_length = phase_length
        self.seed = seed
        self._template = (runtime_config if runtime_config is not None
                          else RuntimeConfig())
        self._lock = threading.Lock()
        self._loaded = OrderedDict()   # name -> runtime, MRU last
        self._building = {}            # name -> threading.Event
        self._closed = False
        self.loads = 0
        self.evictions = 0

    # -- lifecycle ----------------------------------------------------

    def warm_up(self) -> None:
        """Compile every warm-set model now (server startup)."""
        for name in self.warm:
            self.get(name)

    def close(self) -> None:
        """Close every loaded runtime; idempotent.

        Closing a runtime releases its pool's reference on any
        shared-memory plan publication (last reference unlinks the
        segment); as a backstop, segments orphaned by crashed processes
        are reclaimed afterwards.
        """
        with self._lock:
            self._closed = True
            runtimes = list(self._loaded.values())
            self._loaded.clear()
        for runtime in runtimes:
            runtime.close()
        shm.cleanup_orphan_segments()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    # -- lookup -------------------------------------------------------

    def known(self) -> tuple:
        """Every servable model name, warm or cold."""
        return tuple(sorted(BENCH_NETWORKS))

    def loaded(self) -> tuple:
        """Currently resident names, least recently used first."""
        with self._lock:
            return tuple(self._loaded)

    def input_shape(self, name: str) -> tuple:
        return BENCH_NETWORKS[name][1]

    def snapshots(self) -> dict:
        """``{name: MetricsSnapshot}`` for every resident runtime,
        without touching recency order."""
        with self._lock:
            items = list(self._loaded.items())
        return {name: runtime.snapshot() for name, runtime in items}

    def specializations(self) -> dict:
        """``{name: specialization summary}`` per resident runtime —
        which plan variant is live, per-layer block schedules, and
        zero-lane skip rates (see
        :meth:`~repro.runtime.ExecutionPlan.specialization_summary`)."""
        with self._lock:
            items = list(self._loaded.items())
        return {name: runtime.plan.specialization_summary()
                for name, runtime in items}

    def shm_info(self) -> dict:
        """Shared-memory accounting: the process-wide publication
        registry (segments, bytes, refcounts keyed by model /
        fingerprint) plus each resident runtime's pool-level view."""
        info = shm.SHARED_PLANS.stats()
        with self._lock:
            items = list(self._loaded.items())
        info["models"] = {name: runtime.shm_stats()
                          for name, runtime in items}
        return info

    def get(self, name: str) -> InferenceRuntime:
        """The runtime for ``name``, compiling and/or evicting as needed.

        Raises ``KeyError`` for names outside the zoo and
        ``RuntimeError`` once the registry is closed.
        """
        if name not in BENCH_NETWORKS:
            raise KeyError(
                f"unknown model {name!r}; known: "
                f"{', '.join(sorted(BENCH_NETWORKS))}"
            )
        while True:
            with self._lock:
                if self._closed:
                    raise RuntimeError("model registry is closed")
                runtime = self._loaded.get(name)
                if runtime is not None:
                    self._loaded.move_to_end(name)
                    return runtime
                pending = self._building.get(name)
                if pending is None:
                    self._building[name] = threading.Event()
                    break
            # Another thread is compiling this model; wait and retry.
            pending.wait()
        try:
            runtime = self._build(name)
        except BaseException:
            with self._lock:
                self._building.pop(name).set()
            raise
        evicted = []
        with self._lock:
            self._loaded[name] = runtime
            self._loaded.move_to_end(name)
            self.loads += 1
            for victim in list(self._loaded):
                if len(self._loaded) <= self.max_loaded:
                    break
                if victim in self.warm or victim == name:
                    continue
                evicted.append(self._loaded.pop(victim))
                self.evictions += 1
            self._building.pop(name).set()
        for old in evicted:
            old.close()
        return runtime

    def _build(self, name: str) -> InferenceRuntime:
        with obs.span(f"registry:load:{name}", category="registry"):
            builder, shape = BENCH_NETWORKS[name]
            network = SCNetwork.from_trained(
                builder(seed=self.seed),
                SCConfig(phase_length=self.phase_length),
            )
            return InferenceRuntime(
                network, shape, config=dataclasses.replace(self._template),
                name=name,
            )
