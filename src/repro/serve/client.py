"""Asyncio client for the serving protocol.

One :class:`Client` holds one TCP connection and serializes its
request/response pairs with a lock (the protocol is strictly
alternating per connection).  For concurrent in-flight requests, open
several clients — that is what the load bench's connection pool does.
"""

from __future__ import annotations

import asyncio

import numpy as np

from .protocol import decode_array, encode_array, read_message, write_message

__all__ = ["Client"]


class Client:
    """``async with Client(host, port) as c: await c.predict(...)``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8707,
                 client_id: str = None):
        self.host = host
        self.port = port
        self.client_id = client_id
        self._reader = None
        self._writer = None
        self._lock = asyncio.Lock()

    async def connect(self) -> "Client":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is None:
            return
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
        self._reader = self._writer = None

    async def __aenter__(self):
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb):
        await self.close()
        return False

    # -- requests -----------------------------------------------------

    async def request(self, message: dict) -> dict:
        """Send one raw message and await its response."""
        if self._writer is None:
            raise RuntimeError("client is not connected")
        async with self._lock:
            await write_message(self._writer, message)
            return await read_message(self._reader)

    async def predict_raw(self, model: str, x, *, deadline_s: float = None,
                          request_id=None, progressive=None) -> dict:
        """One predict; returns the raw response dict (ok, shed, ...).

        ``progressive=True`` (or a policy dict, e.g. ``{"start_phase_
        length": 8, "margin_z": 1.0}``) requests anytime inference; the
        response then carries a ``"progressive"`` object with the
        chosen ``phase_length``, extension count, and early-exit flag.
        """
        message = {"type": "predict", "model": model,
                   "x": encode_array(np.asarray(x))}
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        if request_id is not None:
            message["id"] = request_id
        if self.client_id is not None:
            message["client"] = self.client_id
        if progressive is not None:
            message["progressive"] = progressive
        return await self.request(message)

    async def predict(self, model: str, x, *, deadline_s: float = None):
        """Logits array for one request.

        Shed/deadline/error responses raise a ``RuntimeError`` naming
        the response's error and reason; use :meth:`predict_raw` to
        handle backpressure without exceptions.
        """
        response = await self.predict_raw(model, x, deadline_s=deadline_s)
        if not response.get("ok"):
            error = response.get("error", "unknown")
            reason = response.get("reason") or response.get("detail", "")
            raise RuntimeError(
                f"predict failed: {error}" + (f" ({reason})" if reason
                                              else "")
            )
        return decode_array(response["logits"])

    async def metrics(self) -> dict:
        return await self.request({"type": "metrics"})

    async def ping(self) -> dict:
        return await self.request({"type": "ping"})
