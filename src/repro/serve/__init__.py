"""Asyncio serving layer over the batched inference runtime.

``repro.serve`` is the top layer of the package: it turns the
in-process :class:`~repro.runtime.InferenceRuntime` library into a
network service that absorbs concurrent traffic.  The pieces:

- :mod:`~repro.serve.protocol` — length-prefixed JSON framing over TCP
  (stdlib ``asyncio`` streams, no dependencies);
- :class:`ModelRegistry` — warm-precompiled :class:`ExecutionPlan`s for
  a configured set of zoo networks, lazy load + LRU eviction for the
  rest;
- :mod:`~repro.serve.admission` — per-client token-bucket quotas and
  queue-depth admission control, so overload produces explicit *shed*
  responses instead of an unbounded queue;
- :class:`Server` — the asyncio front end: concurrent ``predict``
  requests with per-request deadlines and cancellation, a ``metrics``
  endpoint exporting every runtime :class:`MetricsSnapshot` plus the
  :data:`repro.obs.KERNEL_COUNTERS` delta since startup, and graceful
  drain (in-flight requests complete, new ones are refused);
- :class:`Client` — the matching asyncio client;
- :func:`run_loadtest` — the traffic-replay load benchmark behind
  ``python -m repro loadtest`` (open/closed loop, latency percentiles,
  shed rate, ``BENCH_6.json``).

Layering: ``serve`` sits strictly above ``runtime``/``networks``/
``obs`` — nothing below may import it (enforced by
``scripts/check_layering.py``).  See ``docs/serving.md``.
"""

from .admission import AdmissionController, QuotaTable, TokenBucket
from .client import Client
from .config import ServeConfig
from .loadtest import (LoadtestResult, format_loadtest, run_loadtest,
                       write_bench_artifact)
from .protocol import (MAX_MESSAGE_BYTES, ProtocolError, decode_array,
                       encode_array, read_message, write_message)
from .registry import ModelRegistry
from .server import Server

__all__ = [
    "AdmissionController", "QuotaTable", "TokenBucket",
    "Client",
    "ServeConfig",
    "LoadtestResult", "format_loadtest", "run_loadtest",
    "write_bench_artifact",
    "MAX_MESSAGE_BYTES", "ProtocolError", "decode_array", "encode_array",
    "read_message", "write_message",
    "ModelRegistry",
    "Server",
]
