"""Admission control: per-client token buckets + queue-depth bounding.

Two independent gates run before a request touches the runtime:

1. **Quota** — a classic token bucket per client identity (the
   ``client`` field of the request, falling back to the peer address).
   Sustained rate ``rate`` tokens/s, capacity ``burst``; an empty bucket
   sheds with reason ``"quota"``.  Buckets refill lazily on access, so
   an idle client costs nothing.
2. **Queue depth** — a hard bound on concurrently admitted requests.
   The dynamic batcher itself never refuses work, so without this gate
   an overloaded server grows its queue (and every request's latency)
   without bound; with it, request ``max_depth + 1`` is shed with
   reason ``"queue_full"`` while the admitted ones keep their latency.

Both gates are synchronous and O(1); the server calls them on the event
loop.  Time is injected (``now``) so tests are deterministic.
"""

from __future__ import annotations

import time

__all__ = ["AdmissionController", "QuotaTable", "TokenBucket"]


class TokenBucket:
    """Lazy-refill token bucket: ``rate`` tokens/s, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: float, now: float = None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic() if now is None else now

    def try_acquire(self, tokens: float = 1.0, now: float = None) -> bool:
        """Take ``tokens`` if available; never blocks."""
        if now is None:
            now = time.monotonic()
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens at the last refill point (diagnostic only)."""
        return self._tokens


class QuotaTable:
    """Per-client-identity buckets; ``rate=0`` disables quotas."""

    def __init__(self, rate: float, burst: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self._buckets = {}

    def admit(self, client: str, now: float = None) -> bool:
        if self.rate <= 0:
            return True
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.rate, self.burst, now=now
            )
        return bucket.try_acquire(now=now)

    def __len__(self) -> int:
        return len(self._buckets)


class AdmissionController:
    """Quota gate + queue-depth gate + draining flag, in shed order.

    :meth:`admit` returns ``None`` on admission (the caller must pair it
    with :meth:`release`) or the shed reason string:
    ``"draining"`` / ``"quota"`` / ``"queue_full"``.  Draining is
    checked first (a draining server sheds everything new), quota before
    depth (a noisy client is shed even when capacity remains, so its
    traffic cannot crowd out compliant clients).
    """

    def __init__(self, max_depth: int, quota_rate: float = 0.0,
                 quota_burst: float = 8.0):
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        self.max_depth = max_depth
        self.quotas = QuotaTable(quota_rate, quota_burst)
        self.in_flight = 0
        self.peak_in_flight = 0
        self.draining = False

    def admit(self, client: str, now: float = None) -> str:
        if self.draining:
            return "draining"
        if not self.quotas.admit(client, now=now):
            return "quota"
        if self.in_flight >= self.max_depth:
            return "queue_full"
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        return None

    def release(self) -> None:
        if self.in_flight <= 0:
            raise RuntimeError("release without a matching admit")
        self.in_flight -= 1
