"""Configuration for the serving layer."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runtime import ProgressivePolicy, RuntimeConfig

__all__ = ["ServeConfig"]


@dataclass
class ServeConfig:
    """Knobs for :class:`repro.serve.Server`.

    Attributes
    ----------
    host / port:
        Bind address.  ``port=0`` binds an ephemeral port (the bound
        port is published as ``Server.port`` once started) — the right
        choice for tests and the self-contained load bench.
    models:
        Zoo networks the registry precompiles at startup (warm set).
        Any other :data:`~repro.runtime.BENCH_NETWORKS` name is still
        servable — it is compiled on first request and subject to LRU
        eviction.
    max_loaded:
        Registry capacity, warm set included.  Least-recently-used
        models beyond it are closed and evicted (warm models are pinned).
    max_queue_depth:
        Admission bound on concurrently admitted ``predict`` requests
        per server.  Request ``max_queue_depth + 1`` is refused with a
        ``shed: queue_full`` response — the queue never grows past the
        bound, which is what keeps tail latency finite under overload.
    quota_rate / quota_burst:
        Per-client token bucket: sustained requests/second and burst
        capacity.  ``quota_rate=0`` disables quotas.
    default_deadline_s:
        Deadline applied to requests that do not carry their own;
        ``None`` means no default.  An expired deadline cancels the
        queued request (compute is skipped when cancellation wins the
        race to the batcher) and answers ``error: deadline``.
    phase_length / seed:
        SC stream phase length and weight seed for registry-built
        networks (untrained zoo weights; serving cost does not depend
        on values).
    runtime:
        :class:`~repro.runtime.RuntimeConfig` template for every model
        runtime the registry constructs.
    progressive:
        Default :class:`~repro.runtime.ProgressivePolicy` for requests
        that opt into anytime inference with ``"progressive": true``
        (a dict is accepted and normalized).  Per-request policy
        objects override individual fields.  ``None`` uses the policy
        defaults.
    """

    host: str = "127.0.0.1"
    port: int = 0
    models: tuple = ("mnist_mlp",)
    max_loaded: int = 4
    max_queue_depth: int = 32
    quota_rate: float = 0.0
    quota_burst: float = 8.0
    default_deadline_s: float = None
    phase_length: int = 16
    seed: int = 0
    runtime: RuntimeConfig = field(default_factory=lambda: RuntimeConfig(
        workers=2, backend="thread", shard_size=4, max_batch=16,
        max_wait_s=0.002,
    ))
    progressive: ProgressivePolicy = None

    def __post_init__(self):
        if isinstance(self.progressive, dict):
            self.progressive = ProgressivePolicy(**self.progressive)
        if self.progressive is None:
            self.progressive = ProgressivePolicy()
        if isinstance(self.models, str):
            self.models = (self.models,)
        self.models = tuple(self.models)
        if self.max_loaded < max(1, len(self.models)):
            raise ValueError(
                "max_loaded must cover the warm set "
                f"({len(self.models)} models)"
            )
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive")
        if self.quota_rate < 0:
            raise ValueError("quota_rate must be non-negative")
        if self.quota_burst <= 0:
            raise ValueError("quota_burst must be positive")
        if (self.default_deadline_s is not None
                and self.default_deadline_s <= 0):
            raise ValueError("default_deadline_s must be positive")
        if self.phase_length < 1:
            raise ValueError("phase_length must be positive")
