"""The asyncio inference server.

One :class:`Server` owns a :class:`~repro.serve.registry.ModelRegistry`
(warm-compiled plans), an
:class:`~repro.serve.admission.AdmissionController` (quotas + queue
bound) and an ``asyncio.start_server`` front end speaking the
length-prefixed JSON protocol.  Request flow::

    conn -> read_message -> admission (draining/quota/depth)
         -> registry.get(model) -> runtime.submit(x)   [DynamicBatcher]
         -> await Future (deadline => cancel)          [WorkerPool]
         -> write_message(logits | shed | error)

Everything compute-bound stays on the runtime's worker threads; the
event loop only frames messages and awaits futures, so thousands of
idle connections are cheap.  Deadlines cancel the queued request — when
cancellation wins the race to the batcher flush, the samples are never
computed (see ``DynamicBatcher._flush``).

Graceful drain (:meth:`Server.drain`): stop accepting connections, shed
every new ``predict`` with reason ``"draining"``, wait for the admitted
in-flight requests to finish, then close the registry (which drains
each runtime's batcher and pool).  ``ping`` keeps answering throughout,
reporting ``draining: true``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time

import numpy as np

from .. import obs
from ..runtime import BatcherClosedError
from ..runtime.progressive import ProgressivePolicy
from .admission import AdmissionController
from .config import ServeConfig
from .protocol import (ProtocolError, decode_array, encode_array,
                       read_message, write_message)
from .registry import ModelRegistry

__all__ = ["Server", "snapshot_to_dict"]


def snapshot_to_dict(snapshot) -> dict:
    """A :class:`~repro.runtime.MetricsSnapshot` as JSON-encodable data,
    derived rates included."""
    data = dataclasses.asdict(snapshot)
    data["cache_hit_rate"] = snapshot.cache_hit_rate
    data["act_cache_hit_rate"] = snapshot.act_cache_hit_rate
    data["samples_per_s"] = snapshot.samples_per_s
    data["bits_per_s"] = snapshot.bits_per_s
    data["progressive_early_exit_rate"] = snapshot.progressive_early_exit_rate
    data["progressive_mean_final_length"] = \
        snapshot.progressive_mean_final_length
    return data


class Server:
    """Admission-controlled asyncio front end over the inference runtime.

    Use as an async context manager (``async with Server(cfg) as s:``)
    or call :meth:`start` / :meth:`drain` explicitly.  ``port=0`` in the
    config binds an ephemeral port, published as :attr:`port`.
    """

    def __init__(self, config: ServeConfig = None):
        self.config = config if config is not None else ServeConfig()
        self.registry = ModelRegistry(
            warm=self.config.models,
            max_loaded=self.config.max_loaded,
            phase_length=self.config.phase_length,
            seed=self.config.seed,
            runtime_config=self.config.runtime,
        )
        self.admission = AdmissionController(
            self.config.max_queue_depth,
            quota_rate=self.config.quota_rate,
            quota_burst=self.config.quota_burst,
        )
        self.counters = {
            "connections": 0, "requests": 0, "completed": 0,
            "shed_draining": 0, "shed_quota": 0, "shed_queue_full": 0,
            "deadline_expired": 0, "bad_requests": 0, "errors": 0,
        }
        self.port = None
        self._server = None
        self._kernel_scope = obs.KERNEL_COUNTERS.scope()
        self._started_at = None
        self._drained = asyncio.Event()
        self._request_seq = 0

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Warm the registry and start accepting connections."""
        # Plan compilation is CPU work; keep it off the event loop.
        await asyncio.to_thread(self.registry.warm_up)
        self._kernel_scope.rebase()   # warm-up kernels are not traffic
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.perf_counter()

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def drain(self) -> None:
        """Graceful shutdown; idempotent.

        In-flight (already admitted) requests run to completion — the
        registry is only closed after the last one resolves — while
        every newly arriving ``predict`` is shed with ``"draining"``.
        """
        if self._drained.is_set():
            return
        self.admission.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while self.admission.in_flight > 0:
            await asyncio.sleep(0.002)
        await asyncio.to_thread(self.registry.close)
        self._drained.set()

    async def __aenter__(self):
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb):
        await self.drain()
        return False

    # -- connection handling -----------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self.counters["connections"] += 1
        peer = writer.get_extra_info("peername")
        peer = f"{peer[0]}:{peer[1]}" if peer else "unknown"
        try:
            while True:
                try:
                    message = await read_message(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                except ProtocolError as exc:
                    self.counters["bad_requests"] += 1
                    await write_message(writer, {
                        "ok": False, "error": "bad_request",
                        "detail": str(exc),
                    })
                    break   # framing is lost; the connection is done
                response = await self._dispatch(message, peer)
                await write_message(writer, response)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, message: dict, peer: str) -> dict:
        kind = message.get("type")
        if kind == "predict":
            return await self._predict(message, peer)
        if kind == "metrics":
            return self._metrics_response()
        if kind == "ping":
            return {"ok": True, "type": "pong",
                    "draining": self.admission.draining,
                    "models": list(self.registry.loaded())}
        self.counters["bad_requests"] += 1
        return {"ok": False, "error": "bad_request",
                "detail": f"unknown message type {kind!r}"}

    # -- predict ------------------------------------------------------

    async def _predict(self, message: dict, peer: str) -> dict:
        t0 = time.perf_counter()
        self._request_seq += 1
        rid = message.get("id", self._request_seq)
        client = message.get("client") or peer
        self.counters["requests"] += 1
        reason = self.admission.admit(client)
        if reason is not None:
            self.counters["shed_" + reason] += 1
            return {"ok": False, "error": "shed", "reason": reason,
                    "id": rid}
        try:
            response = await self._run_admitted(message, rid, t0)
        finally:
            self.admission.release()
        return response

    async def _run_admitted(self, message: dict, rid, t0: float) -> dict:
        model = message.get("model")
        deadline_s = message.get("deadline_s",
                                 self.config.default_deadline_s)
        try:
            x = decode_array(message.get("x"))
        except ProtocolError as exc:
            self.counters["bad_requests"] += 1
            return {"ok": False, "error": "bad_request", "id": rid,
                    "detail": str(exc)}
        try:
            runtime = await asyncio.to_thread(self.registry.get, model)
        except (KeyError, TypeError) as exc:
            self.counters["bad_requests"] += 1
            return {"ok": False, "error": "bad_request", "id": rid,
                    "detail": str(exc)}
        except RuntimeError:
            # Registry closed under us: the server is draining.
            self.counters["shed_draining"] += 1
            return {"ok": False, "error": "shed", "reason": "draining",
                    "id": rid}
        if x.shape == tuple(runtime.plan.input_shape):
            x = x[None]   # single un-batched sample
        spec = message.get("progressive")
        if spec:
            return await self._run_progressive(runtime, x, spec, model,
                                               rid, deadline_s, t0)
        try:
            future = runtime.submit(x)
        except BatcherClosedError:
            self.counters["shed_draining"] += 1
            return {"ok": False, "error": "shed", "reason": "draining",
                    "id": rid}
        except ValueError as exc:
            self.counters["bad_requests"] += 1
            return {"ok": False, "error": "bad_request", "id": rid,
                    "detail": str(exc)}
        wrapped = asyncio.wrap_future(future)
        try:
            if deadline_s is not None:
                remaining = deadline_s - (time.perf_counter() - t0)
                if remaining <= 0:
                    raise asyncio.TimeoutError
                logits = await asyncio.wait_for(wrapped, timeout=remaining)
            else:
                logits = await wrapped
        except asyncio.TimeoutError:
            # wait_for already cancelled the future; if it was still
            # queued, the batcher will skip computing it entirely.
            self.counters["deadline_expired"] += 1
            return {"ok": False, "error": "deadline", "id": rid,
                    "deadline_s": deadline_s}
        except BatcherClosedError:
            self.counters["shed_draining"] += 1
            return {"ok": False, "error": "shed", "reason": "draining",
                    "id": rid}
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.counters["errors"] += 1
            return {"ok": False, "error": "internal", "id": rid,
                    "detail": f"{type(exc).__name__}: {exc}"}
        latency_s = time.perf_counter() - t0
        obs.tracer().record_span(
            f"request:{rid}", latency_s, category="request",
            counters={"samples": int(x.shape[0])},
        )
        self.counters["completed"] += 1
        return {
            "ok": True, "id": rid, "model": model,
            "logits": encode_array(logits),
            "argmax": np.argmax(logits, axis=-1).tolist(),
            "latency_s": latency_s,
        }

    async def _run_progressive(self, runtime, x, spec, model, rid,
                               deadline_s, t0: float) -> dict:
        """Anytime-inference branch of ``predict``.

        Runs the runtime's confidence-gated extension loop on a worker
        thread (a progressive request is one resumable evaluation, so
        it bypasses the dynamic batcher).  The deadline is best-effort:
        an expiry answers ``error: deadline`` but cannot interrupt the
        extension round already computing on its thread.
        """
        try:
            policy = ProgressivePolicy.from_request(
                spec, default=self.config.progressive)
        except (TypeError, ValueError) as exc:
            self.counters["bad_requests"] += 1
            return {"ok": False, "error": "bad_request", "id": rid,
                    "detail": str(exc)}
        task = asyncio.ensure_future(asyncio.to_thread(
            runtime.infer_progressive, x, policy))
        try:
            if deadline_s is not None:
                remaining = deadline_s - (time.perf_counter() - t0)
                if remaining <= 0:
                    raise asyncio.TimeoutError
                outcome = await asyncio.wait_for(
                    asyncio.shield(task), timeout=remaining)
            else:
                outcome = await task
        except asyncio.TimeoutError:
            self.counters["deadline_expired"] += 1
            task.add_done_callback(lambda t: t.exception())
            return {"ok": False, "error": "deadline", "id": rid,
                    "deadline_s": deadline_s}
        except BatcherClosedError:
            self.counters["shed_draining"] += 1
            return {"ok": False, "error": "shed", "reason": "draining",
                    "id": rid}
        except asyncio.CancelledError:
            raise
        except ValueError as exc:
            # Non-resumable config (byte kernel / non-prefix-stable
            # scheme) or bad input — the client's request cannot be
            # served progressively on this model.
            self.counters["bad_requests"] += 1
            return {"ok": False, "error": "bad_request", "id": rid,
                    "detail": str(exc)}
        except Exception as exc:
            self.counters["errors"] += 1
            return {"ok": False, "error": "internal", "id": rid,
                    "detail": f"{type(exc).__name__}: {exc}"}
        latency_s = time.perf_counter() - t0
        obs.tracer().record_span(
            f"request:{rid}", latency_s, category="request",
            counters={"samples": int(x.shape[0]),
                      "phase_length": int(outcome.phase_length)},
        )
        self.counters["completed"] += 1
        return {
            "ok": True, "id": rid, "model": model,
            "logits": encode_array(outcome.logits),
            "argmax": np.argmax(outcome.logits, axis=-1).tolist(),
            "latency_s": latency_s,
            "progressive": {
                "phase_length": int(outcome.phase_length),
                "extensions": int(outcome.extensions),
                "early_exit": bool(outcome.early_exit),
                "margin": float(outcome.margin),
                "margin_bound": float(outcome.margin_bound),
                "history": [int(l) for l in outcome.history],
            },
        }

    # -- metrics ------------------------------------------------------

    def _metrics_response(self) -> dict:
        models = {name: snapshot_to_dict(snapshot) for name, snapshot
                  in self.registry.snapshots().items()}
        server = dict(self.counters)
        server.update(
            in_flight=self.admission.in_flight,
            peak_in_flight=self.admission.peak_in_flight,
            max_queue_depth=self.admission.max_depth,
            draining=self.admission.draining,
            quota_clients=len(self.admission.quotas),
            registry_loads=self.registry.loads,
            registry_evictions=self.registry.evictions,
            warm_models=list(self.registry.warm),
            loaded_models=list(self.registry.loaded()),
            uptime_s=(time.perf_counter() - self._started_at
                      if self._started_at is not None else 0.0),
        )
        kernels = {name: [calls, seconds] for name, (calls, seconds)
                   in sorted(self._kernel_scope.delta().items())}
        return {"ok": True, "server": server, "models": models,
                "kernels": kernels,
                "specialization": self.registry.specializations(),
                "shm": self.registry.shm_info()}
