"""Length-prefixed JSON wire protocol for the serving layer.

Every message — request or response — is one UTF-8 JSON object framed
by a 4-byte big-endian length prefix.  The framing is symmetric, so the
same two functions serve both sides of the connection, and a connection
carries a strict request/response alternation (pipelining is a client
concern: open more connections).

Request types (the ``type`` field):

``predict``
    ``{"type": "predict", "model": name, "x": nested lists or
    encode_array() dict, "id": opt, "client": opt, "deadline_s": opt,
    "progressive": opt}``
    -> ``{"ok": true, "id": ..., "logits": [...], "argmax": [...],
    "latency_s": ...}`` or a shed/error response (below).
    ``progressive`` opts into anytime inference: ``true`` for the
    server's default policy or an object overriding
    :class:`~repro.runtime.ProgressivePolicy` fields
    (``start_phase_length``, ``max_phase_length``, ``growth``,
    ``margin_z``, ``target_rms``); the success response then adds
    ``"progressive": {"phase_length", "extensions", "early_exit",
    "margin", "margin_bound", "history"}``.
``metrics``
    -> ``{"ok": true, "server": {...}, "models": {name: snapshot},
    "kernels": {name: [calls, seconds]}}`` — the ``/metrics``-style
    endpoint; see ``docs/serving.md`` for the schema.
``ping``
    -> ``{"ok": true, "type": "pong"}`` — liveness / drain probe.

Failure responses carry ``"ok": false`` plus ``"error"``: ``"shed"``
(with ``"reason"``: ``queue_full`` / ``quota`` / ``draining``),
``"deadline"``, ``"bad_request"``, or ``"internal"``.  Shed and
deadline responses are *protocol-level backpressure*: the connection
stays usable and the client is expected to back off.
"""

from __future__ import annotations

import asyncio
import json
import struct

import numpy as np

__all__ = ["MAX_MESSAGE_BYTES", "ProtocolError", "decode_array",
           "encode_array", "read_message", "write_message"]

_HEADER = struct.Struct(">I")

#: Upper bound on one framed message; a peer announcing more is treated
#: as corrupt (or hostile) framing rather than an allocation request.
MAX_MESSAGE_BYTES = 32 << 20


class ProtocolError(RuntimeError):
    """Malformed framing or JSON on the wire."""


def encode_array(x: np.ndarray) -> dict:
    """JSON-encodable ``{"shape": [...], "data": flat list}`` form.

    Flat row-major data avoids the deep nesting of ``tolist()`` for
    high-rank activation tensors and round-trips exactly for float64.
    """
    x = np.asarray(x, dtype=np.float64)
    return {"shape": list(x.shape), "data": x.reshape(-1).tolist()}


def decode_array(obj) -> np.ndarray:
    """Inverse of :func:`encode_array`; nested lists also accepted."""
    if isinstance(obj, dict):
        try:
            shape = tuple(int(d) for d in obj["shape"])
            data = obj["data"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed array object: {exc}") from exc
        arr = np.asarray(data, dtype=np.float64)
        try:
            return arr.reshape(shape)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
    try:
        return np.asarray(obj, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"not an array: {exc}") from exc


async def read_message(reader: asyncio.StreamReader) -> dict:
    """Read one framed JSON message; raises ``IncompleteReadError`` on
    clean EOF at a frame boundary and :class:`ProtocolError` on junk."""
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte message bound"
        )
    payload = await reader.readexactly(length)
    try:
        message = json.loads(payload)
    except ValueError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


async def write_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Frame and send one JSON message, draining the transport."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"refusing to send a {len(payload)}-byte frame"
        )
    writer.write(_HEADER.pack(len(payload)) + payload)
    await writer.drain()
