"""Stochastic-computing primitives — the paper's algorithmic contribution.

Public surface:

- :mod:`repro.core.rng` — LFSR / ideal / low-discrepancy threshold sources
- :mod:`repro.core.bitstream` — stream containers, packing, correlation
- :mod:`repro.core.sng` — stochastic number generators
- :mod:`repro.core.representation` — unipolar / bipolar / split-unipolar
- :mod:`repro.core.ops` — single-gate SC arithmetic
- :mod:`repro.core.accumulate` — OR / MUX / APC wide accumulators
- :mod:`repro.core.mac` — split-unipolar two-phase MAC (Fig. 1)
- :mod:`repro.core.pooling` — computation-skipping average pooling
- :mod:`repro.core.errors` — analytic RMS error models
"""

from .accumulate import (ApcAccumulator, MuxAccumulator, OrAccumulator,
                         make_accumulator)
from .bitstream import Bitstream, pack_stream, packed_popcount, scc, unpack_stream
from .fsm import SaturatingCounterFsm, StochasticTanh, stanh_expected
from .errors import (bipolar_length_multiplier, empirical_rms,
                     rms_error_bipolar, rms_error_unipolar)
from .mac import MacResult, MacTrace, SplitUnipolarMac
from .ops import (and_multiply, apc_accumulate, counter_relu, mux_accumulate,
                  mux_add, or_accumulate, or_expected, up_down_counter,
                  xnor_multiply)
from .pooling import (StochasticMaxPoolFsm, concat_pool_counter,
                      mux_average_pool, skip_factor, skipped_average_pool)
from .representation import (BipolarCodec, SplitUnipolarCodec,
                             SplitUnipolarValue, UnipolarCodec, merge_split,
                             split_value)
from .rng import Lfsr, LfsrSource, NumpyRandomSource, VanDerCorputSource, make_source
from .sng import StochasticNumberGenerator, quantize_probability

__all__ = [
    "ApcAccumulator", "MuxAccumulator", "OrAccumulator", "make_accumulator",
    "Bitstream", "pack_stream", "packed_popcount", "scc", "unpack_stream",
    "SaturatingCounterFsm", "StochasticTanh", "stanh_expected",
    "bipolar_length_multiplier", "empirical_rms", "rms_error_bipolar",
    "rms_error_unipolar",
    "MacResult", "MacTrace", "SplitUnipolarMac",
    "and_multiply", "apc_accumulate", "counter_relu", "mux_accumulate",
    "mux_add", "or_accumulate", "or_expected", "up_down_counter",
    "xnor_multiply",
    "StochasticMaxPoolFsm", "concat_pool_counter", "mux_average_pool",
    "skip_factor", "skipped_average_pool",
    "BipolarCodec", "SplitUnipolarCodec", "SplitUnipolarValue",
    "UnipolarCodec", "merge_split", "split_value",
    "Lfsr", "LfsrSource", "NumpyRandomSource", "VanDerCorputSource",
    "make_source",
    "StochasticNumberGenerator", "quantize_probability",
]
