"""Stochastic number generators (SNGs).

An SNG converts a fixed-point binary value into a stochastic bitstream by
comparing the value against a pseudo-random threshold every clock: the
output bit is 1 when ``threshold < value``.  Over ``n`` clocks the density
of ones approaches ``value / 2**bits``.

The generator is vectorized: it encodes whole numpy arrays of
probabilities at once, assigning each requested *lane* its own threshold
sequence so that operand pairs fed to AND multipliers stay decorrelated
(see :func:`repro.core.bitstream.scc`).
"""

from __future__ import annotations

import numpy as np

from .rng import make_source

__all__ = ["quantize_probability", "StochasticNumberGenerator"]


def quantize_probability(p: np.ndarray, bits: int = 8) -> np.ndarray:
    """Round probabilities to the ``bits``-bit grid an SNG can represent.

    Hardware compares against an integer threshold, so only multiples of
    ``1 / 2**bits`` are representable.  Values are clipped to [0, 1].
    """
    levels = 1 << bits
    return np.clip(np.round(np.asarray(p, dtype=np.float64) * levels), 0, levels) / levels


class StochasticNumberGenerator:
    """Vectorized comparator-based SNG bank.

    Parameters
    ----------
    length:
        Stream length in clocks.
    bits:
        Comparator resolution (8 in all ACOUSTIC configurations).
    scheme:
        Threshold source: ``"lfsr"`` (hardware-faithful), ``"random"``
        (ideal), or ``"vdc"`` (low discrepancy).
    seed:
        Base seed; distinct seeds give statistically independent banks.
    """

    def __init__(self, length: int, bits: int = 8, scheme: str = "lfsr",
                 seed: int = 1, source=None):
        if length < 1:
            raise ValueError("stream length must be positive")
        self.length = length
        self.bits = bits
        self.scheme = scheme
        self.seed = seed
        # A custom threshold source (anything with .thresholds(lanes, n))
        # overrides the named scheme, e.g. an LfsrSource with a specific
        # register width.
        self._source = source if source is not None else make_source(
            scheme, bits=bits, seed=seed
        )

    def generate(self, p: np.ndarray, lanes: str = "per-element",
                 offset: int = 0) -> np.ndarray:
        """Encode probabilities ``p`` (any shape, values in [0, 1]).

        Returns a uint8 array of shape ``p.shape + (length,)``.

        ``lanes`` controls threshold sharing:

        - ``"per-element"``: every element gets its own threshold lane
          (decorrelated streams; matches one SNG per value).
        - ``"shared"``: all elements share a single lane.  The streams
          are then maximally correlated — useful to demonstrate why RNG
          sharing between multiplier operands is forbidden.

        ``offset`` encodes the window of clocks ``[offset, offset +
        length)`` instead of ``[0, length)``; with a prefix-stable
        threshold source this is exactly the continuation of the shorter
        stream (see :func:`repro.core.rng.prefix_stable_scheme`).
        """
        p = np.asarray(p, dtype=np.float64)
        if p.size and (p.min() < 0 or p.max() > 1):
            raise ValueError("probabilities must lie in [0, 1]")
        flat = p.reshape(-1)
        levels = 1 << self.bits
        targets = np.round(flat * levels).astype(np.uint32)[:, None]
        if lanes == "per-element":
            thresholds = self._source.thresholds(flat.size, self.length,
                                                 offset=offset)
        elif lanes == "shared":
            thresholds = np.broadcast_to(
                self._source.thresholds(1, self.length, offset=offset),
                (flat.size, self.length)
            )
        else:
            raise ValueError(f"unknown lane mode: {lanes!r}")
        bits = (thresholds < targets).astype(np.uint8)
        return bits.reshape(p.shape + (self.length,))

    def generate_one(self, p: float) -> np.ndarray:
        """Encode a scalar probability; returns a 1-D uint8 stream."""
        return self.generate(np.asarray([p]))[0]
