"""Analytical error models for stochastic representations (Sec. II-A).

For a stream of length ``n`` encoding value ``v``:

- unipolar RMS error:  ``sqrt(v * (1 - v) / n)``
- bipolar RMS error:   ``sqrt((1 - v**2) / n)``

The bipolar variance is strictly >= 2x the unipolar variance for the same
``v`` in [0, 1] (equality only at v = 0), which is the paper's
justification for split-unipolar: ">= 2X shorter streams" at equal error.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rms_error_unipolar",
    "rms_error_bipolar",
    "bipolar_length_multiplier",
    "length_for_rms_unipolar",
    "length_for_rms_bipolar",
    "decision_margin_bound",
    "empirical_rms",
]


def rms_error_unipolar(v, n):
    """RMS representational error of a length-``n`` unipolar stream."""
    v = np.asarray(v, dtype=np.float64)
    return np.sqrt(v * (1.0 - v) / n)


def rms_error_bipolar(v, n):
    """RMS representational error of a length-``n`` bipolar stream."""
    v = np.asarray(v, dtype=np.float64)
    return np.sqrt((1.0 - v * v) / n)


def bipolar_length_multiplier(v):
    """Stream-length factor bipolar needs over unipolar at equal error.

    Equal RMS error requires ``n_b / n_u = (1 - v**2) / (v * (1 - v))
    = (1 + v) / v`` which is >= 2 for all v in (0, 1].
    """
    v = np.asarray(v, dtype=np.float64)
    return (1.0 + v) / v


def length_for_rms_unipolar(v, target_rms):
    """Minimum unipolar stream length for a target RMS error.

    Clamped to at least 1: the variance vanishes at ``v = 0`` and
    ``v = 1`` (the stream is constant), but a zero-length stream cannot
    be clocked, so the exactly-representable endpoints still need one
    bit.
    """
    v = np.asarray(v, dtype=np.float64)
    n = np.ceil(v * (1.0 - v) / (target_rms**2)).astype(np.int64)
    return np.maximum(n, 1)


def length_for_rms_bipolar(v, target_rms):
    """Minimum bipolar stream length for a target RMS error.

    Clamped to at least 1 (the variance vanishes at ``v = +-1``, cf.
    :func:`length_for_rms_unipolar`).
    """
    v = np.asarray(v, dtype=np.float64)
    n = np.ceil((1.0 - v * v) / (target_rms**2)).astype(np.int64)
    return np.maximum(n, 1)


def decision_margin_bound(phase_length, z: float = 2.0,
                          representation: str = "split-unipolar"):
    """Worst-case ``z``-sigma bound on a top-1/top-2 logit margin.

    Used by the progressive early-exit gate: a classification decided at
    phase length ``n`` is trusted when the observed margin between the
    two largest logits exceeds this bound, i.e. the margin is unlikely
    to be an artifact of stream noise.

    Split-unipolar logits decode as ``up/n - down/n``; each phase count
    has worst-case variance ``0.25 / n`` (at ``v = 0.5``), so one logit
    carries variance ``<= 0.5 / n`` and a difference of two independent
    logits ``<= 1 / n`` — worst-case margin RMS ``1 / sqrt(n)``.  A
    bipolar stream of total length ``2 n`` has per-value variance
    ``<= 1 / (2 n)``, giving the same ``1 / sqrt(n)`` margin RMS.  The
    bound is deliberately conservative (real logit densities sit far
    from 0.5, and OR/APC accumulation correlates the counts downward);
    ``z`` tunes how conservative.
    """
    if z <= 0:
        raise ValueError("z must be positive")
    n = np.asarray(phase_length, dtype=np.float64)
    if np.any(n < 1):
        raise ValueError("phase_length must be at least 1")
    if representation not in ("split-unipolar", "bipolar"):
        raise ValueError(f"unknown representation: {representation!r}")
    return z / np.sqrt(n)


def empirical_rms(estimates: np.ndarray, truth) -> float:
    """Root-mean-square error of a batch of decoded estimates."""
    estimates = np.asarray(estimates, dtype=np.float64)
    return float(np.sqrt(np.mean((estimates - np.asarray(truth)) ** 2)))
