"""Analytical error models for stochastic representations (Sec. II-A).

For a stream of length ``n`` encoding value ``v``:

- unipolar RMS error:  ``sqrt(v * (1 - v) / n)``
- bipolar RMS error:   ``sqrt((1 - v**2) / n)``

The bipolar variance is strictly >= 2x the unipolar variance for the same
``v`` in [0, 1] (equality only at v = 0), which is the paper's
justification for split-unipolar: ">= 2X shorter streams" at equal error.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rms_error_unipolar",
    "rms_error_bipolar",
    "bipolar_length_multiplier",
    "length_for_rms_unipolar",
    "length_for_rms_bipolar",
    "empirical_rms",
]


def rms_error_unipolar(v, n):
    """RMS representational error of a length-``n`` unipolar stream."""
    v = np.asarray(v, dtype=np.float64)
    return np.sqrt(v * (1.0 - v) / n)


def rms_error_bipolar(v, n):
    """RMS representational error of a length-``n`` bipolar stream."""
    v = np.asarray(v, dtype=np.float64)
    return np.sqrt((1.0 - v * v) / n)


def bipolar_length_multiplier(v):
    """Stream-length factor bipolar needs over unipolar at equal error.

    Equal RMS error requires ``n_b / n_u = (1 - v**2) / (v * (1 - v))
    = (1 + v) / v`` which is >= 2 for all v in (0, 1].
    """
    v = np.asarray(v, dtype=np.float64)
    return (1.0 + v) / v


def length_for_rms_unipolar(v, target_rms):
    """Minimum unipolar stream length for a target RMS error."""
    v = np.asarray(v, dtype=np.float64)
    return np.ceil(v * (1.0 - v) / (target_rms**2)).astype(np.int64)


def length_for_rms_bipolar(v, target_rms):
    """Minimum bipolar stream length for a target RMS error."""
    v = np.asarray(v, dtype=np.float64)
    return np.ceil((1.0 - v * v) / (target_rms**2)).astype(np.int64)


def empirical_rms(estimates: np.ndarray, truth) -> float:
    """Root-mean-square error of a batch of decoded estimates."""
    estimates = np.asarray(estimates, dtype=np.float64)
    return float(np.sqrt(np.mean((estimates - np.asarray(truth)) ** 2)))
