"""Random number sources for stochastic number generation.

Stochastic computing accuracy is dominated by the quality and correlation
of the random sequences that drive the stochastic number generators (SNGs).
ACOUSTIC uses LFSR-based SNGs (Sec. IV-A of the paper); this module
implements maximal-length Fibonacci LFSRs plus an ideal (numpy) source and
a low-discrepancy (van der Corput) source used in the RNG-scheme ablation.

All sources produce integer *thresholds* in ``[0, 2**bits)``.  An SNG turns
a probability ``p`` into a bitstream by emitting ``1`` whenever the
threshold is below ``p * 2**bits`` (see :mod:`repro.core.sng`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAXIMAL_TAPS",
    "Lfsr",
    "LfsrSource",
    "NumpyRandomSource",
    "VanDerCorputSource",
    "make_source",
    "prefix_stable_scheme",
]

#: Feedback tap positions (1-indexed bit numbers; tap ``k`` reads register
#: bit ``k-1``) yielding maximal-length sequences, per the standard
#: Xilinx XAPP052 polynomial table.
MAXIMAL_TAPS = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 6, 4, 1),
    13: (13, 4, 3, 1),
    14: (14, 5, 3, 1),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 6, 2, 1),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
}


class Lfsr:
    """Maximal-length Fibonacci linear feedback shift register.

    The register holds ``width`` bits and cycles through all
    ``2**width - 1`` non-zero states.  Reading the register state as an
    integer gives a pseudo-random sequence that hardware SNGs use as the
    comparison threshold.

    Parameters
    ----------
    width:
        Register width in bits (3..24 supported).
    seed:
        Initial non-zero state.  Defaults to 1.
    taps:
        Optional override of the feedback tap positions (1-indexed from
        the MSB).  Defaults to a maximal-length configuration.
    """

    def __init__(self, width: int, seed: int = 1, taps: tuple = None):
        if width not in MAXIMAL_TAPS and taps is None:
            raise ValueError(
                f"no maximal-length taps known for width {width}; "
                f"supported widths: {sorted(MAXIMAL_TAPS)}"
            )
        if not 0 < seed < (1 << width):
            raise ValueError(f"seed must be a non-zero {width}-bit value, got {seed}")
        self.width = width
        self.taps = tuple(taps) if taps is not None else MAXIMAL_TAPS[width]
        self.state = seed
        self._seed = seed

    @property
    def period(self) -> int:
        """Length of the state cycle for a maximal-length configuration."""
        return (1 << self.width) - 1

    def reset(self) -> None:
        """Return the register to its seed state."""
        self.state = self._seed

    def step(self) -> int:
        """Advance one clock and return the new state."""
        fb = 0
        for tap in self.taps:
            fb ^= (self.state >> (tap - 1)) & 1
        self.state = ((self.state << 1) | fb) & ((1 << self.width) - 1)
        return self.state

    def sequence(self, n: int) -> np.ndarray:
        """Return the next ``n`` states as a uint32 array (advances state)."""
        out = np.empty(n, dtype=np.uint32)
        state = self.state
        width = self.width
        mask = (1 << width) - 1
        shifts = [tap - 1 for tap in self.taps]
        for i in range(n):
            fb = 0
            for sh in shifts:
                fb ^= (state >> sh) & 1
            state = ((state << 1) | fb) & mask
            out[i] = state
        self.state = state
        return out


class LfsrSource:
    """Threshold source backed by one shared LFSR per stream *lane*.

    Hardware shares a single RNG across many SNGs (the paper notes "RNG
    sharing across multiple stochastic number generators, as is common
    practice").  Sharing the same sequence between the two operands of an
    AND multiplier would correlate them and destroy the product, so this
    source hands out *lanes*: each lane is the same LFSR architecture
    seeded differently (equivalently, a rotated copy of the shared
    sequence), which is how real designs decorrelate operands cheaply.

    Parameters
    ----------
    bits:
        Threshold resolution; thresholds lie in ``[0, 2**bits)``.
    width:
        LFSR register width; must be >= bits.  Defaults to ``bits``.
    seed:
        Base seed; lane ``k`` uses ``seed + k`` (wrapped to non-zero).
    """

    #: Cached full-period threshold cycles keyed by (width, bits).
    _cycle_cache: dict = {}

    #: Threshold column ``t`` depends only on the absolute clock index,
    #: never on the requested window length, so streams can be extended
    #: bit-exactly (see :meth:`thresholds` ``offset``).
    prefix_stable = True

    def __init__(self, bits: int = 8, width: int = None, seed: int = 1):
        self.bits = bits
        # Width defaults to the comparator precision, as in hardware SNGs:
        # a width-8 register cycles through all 255 non-zero thresholds,
        # so a 128-bit window samples *without replacement* (finite-
        # population variance reduction) and a 255+ window is quasi-exact.
        # Wider registers look "more random" but their windows carry the
        # doubling-map serial correlation and measurably inflate both
        # encoding and product RMS (~1.4x at length 128).
        self.width = width if width is not None else bits
        if self.width < bits:
            raise ValueError("LFSR width must be at least the threshold bit-count")
        self.seed = seed

    def _cycle(self) -> np.ndarray:
        """The full maximal-length state cycle, reduced to thresholds.

        All non-zero seeds of a maximal LFSR lie on this single cycle, so
        a lane seeded differently is exactly a phase-shifted view of it.
        Computing the cycle once makes layer-scale encoding vectorizable.
        """
        key = (self.width, self.bits)
        cycle = LfsrSource._cycle_cache.get(key)
        if cycle is None:
            lfsr = Lfsr(self.width, seed=1)
            cycle = (lfsr.sequence(lfsr.period) >> (self.width - self.bits)).astype(
                np.uint32
            )
            LfsrSource._cycle_cache[key] = cycle
        return cycle

    def thresholds(self, lanes: int, length: int,
                   offset: int = 0) -> np.ndarray:
        """Return an ``(lanes, length)`` uint32 array of thresholds.

        Lane ``k`` reads the shared cycle starting at a golden-ratio phase
        stride (adjacent lanes land far apart on the cycle — a unit stride
        would make lane k+1 a one-step shift of lane k, i.e. maximally
        correlated), and additionally applies a per-lane bit rotation to
        the threshold word.  Rotations are free in hardware (wiring
        permutations of the shared LFSR taps) and are the standard way to
        decorrelate many SNGs fed from one register.  Streams longer than
        the LFSR period wrap, exactly as the hardware register would.

        ``offset`` starts the window at absolute clock ``offset`` instead
        of 0: ``thresholds(l, a + b)`` equals ``thresholds(l, a)``
        concatenated with ``thresholds(l, b, offset=a)`` — the resumable
        kernels rely on this to extend streams without recomputing the
        prefix.
        """
        cycle = self._cycle()
        period = cycle.shape[0]
        # Golden-ratio stride spreads lane phases over the whole cycle.
        stride = max(1, int(round(period * 0.6180339887)))
        lane_ids = np.uint64(self.seed) + np.arange(lanes, dtype=np.uint64)
        offsets = (lane_ids * np.uint64(stride)) % np.uint64(period)
        idx = (
            offsets[:, None]
            + np.arange(offset, offset + length, dtype=np.uint64)[None, :]
        ) % np.uint64(period)
        out = cycle[idx.astype(np.int64)]
        # Per-lane decorrelation: a bit rotation followed by an XOR mask
        # of the threshold word.  Both are wiring/inverter tricks (free in
        # hardware) and both are bijections on the threshold space, so
        # every lane keeps the full-period equidistribution; together with
        # the phase offset they give ~500k distinct lane transforms, so
        # thousands of SNGs can share one small register without
        # identical-lane collisions.
        bits = self.bits
        mask = np.uint32((1 << bits) - 1)
        rot = (lane_ids % np.uint64(bits)).astype(np.uint32)
        for r in range(1, bits):
            sel = rot == r
            if not sel.any():
                continue
            vals = out[sel]
            out[sel] = ((vals << np.uint32(r)) | (vals >> np.uint32(bits - r))) & mask
        xor_masks = (
            (lane_ids * np.uint64(0xBF58476D1CE4E5B9)) >> np.uint64(43)
        ).astype(np.uint32) & mask
        return out ^ xor_masks[:, None]


class NumpyRandomSource:
    """Ideal (software) random threshold source.

    Used as the reference point in the RNG-scheme ablation: it has no
    LFSR periodicity artifacts, so any accuracy delta against
    :class:`LfsrSource` isolates the cost of cheap hardware randomness.
    """

    #: Each ``thresholds`` call draws a fresh block from the stateful
    #: generator row-major, so column ``t`` of a length-``n`` window does
    #: NOT match column ``t`` of a longer window: this scheme cannot be
    #: extended bit-exactly and progressive evaluation rejects it.
    prefix_stable = False

    def __init__(self, bits: int = 8, seed: int = 0):
        self.bits = bits
        self._rng = np.random.default_rng(seed)

    def thresholds(self, lanes: int, length: int,
                   offset: int = 0) -> np.ndarray:
        # ``offset`` only skips columns within this one draw; it does not
        # make the stateful source resumable across calls.
        out = self._rng.integers(
            0, 1 << self.bits, size=(lanes, offset + length), dtype=np.uint32
        )
        return out[:, offset:]


class VanDerCorputSource:
    """Low-discrepancy threshold source (base-2 van der Corput sequence).

    Deterministic bit-streams built from low-discrepancy sequences remove
    random fluctuation entirely (cf. Faraji et al., DATE 2019, cited as
    [20] in the paper).  Lane ``k`` uses a different integer offset into
    the sequence so operand pairs stay decorrelated.
    """

    #: Column ``t`` is a pure function of the absolute index ``t`` (see
    #: :meth:`thresholds`), so windows extend bit-exactly.
    prefix_stable = True

    def __init__(self, bits: int = 8, seed: int = 0):
        self.bits = bits
        self.seed = seed

    @staticmethod
    def _bit_reverse(values: np.ndarray, bits: int) -> np.ndarray:
        out = np.zeros_like(values)
        v = values.copy()
        for _ in range(bits):
            out = (out << 1) | (v & 1)
            v >>= 1
        return out

    def thresholds(self, lanes: int, length: int,
                   offset: int = 0) -> np.ndarray:
        levels = 1 << self.bits
        # Lane k walks the index space with its own odd stride (a
        # bijection mod 2**bits, so every lane is perfectly
        # equidistributed over one period) before the radical-inverse
        # bit reversal; distinct strides decorrelate lane pairs the way
        # deterministic-SC designs pair clock-divided streams.
        lane_ids = np.arange(lanes, dtype=np.uint64) + np.uint64(self.seed)
        strides = (
            (lane_ids * np.uint64(0x9E3779B97F4A7C15)) >> np.uint64(33)
        ).astype(np.uint32) | np.uint32(1)
        offsets = ((lane_ids * np.uint64(0xD1B54A32D192ED03)) >> np.uint64(40)).astype(
            np.uint32
        )
        t = np.arange(offset, offset + length, dtype=np.uint32)
        idx = (strides[:, None] * t[None, :] + offsets[:, None]) & np.uint32(
            levels - 1
        )
        return self._bit_reverse(idx, self.bits)


def prefix_stable_scheme(scheme: str) -> bool:
    """Whether ``scheme``'s thresholds depend only on the absolute clock.

    Prefix-stable schemes (``lfsr``, ``vdc``) can extend an encoded
    stream bit-exactly via the ``offset`` argument of ``thresholds``;
    the stateful ``random`` scheme cannot, so resumable/progressive
    evaluation is gated on this predicate.
    """
    return getattr(make_source(scheme), "prefix_stable", False)


def make_source(scheme: str, bits: int = 8, seed: int = 1):
    """Construct a threshold source by name.

    ``scheme`` is one of ``"lfsr"``, ``"random"``, ``"vdc"``.
    """
    scheme = scheme.lower()
    if scheme == "lfsr":
        return LfsrSource(bits=bits, seed=max(seed, 1))
    if scheme == "random":
        return NumpyRandomSource(bits=bits, seed=seed)
    if scheme in ("vdc", "lowdiscrepancy", "van-der-corput"):
        return VanDerCorputSource(bits=bits, seed=seed)
    raise ValueError(f"unknown RNG scheme: {scheme!r}")
