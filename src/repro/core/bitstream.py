"""Bitstream containers and packed-bit helpers.

A stochastic bitstream is a sequence of bits whose *density* (fraction of
ones) encodes a number.  Internally streams are numpy ``uint8`` arrays of
0/1 with time on the last axis; for bulk linear algebra the functional
simulator packs eight time steps per byte (``np.packbits``) so AND/OR
reductions run on 1/8th the memory.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Bitstream",
    "pack_stream",
    "unpack_stream",
    "popcount_bytes",
    "packed_popcount",
    "scc",
    "scc_matrix",
]

_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint16
)


def pack_stream(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 array along its last axis into bytes (8 steps/byte)."""
    return np.packbits(bits.astype(np.uint8), axis=-1)


def unpack_stream(packed: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`pack_stream`; ``length`` trims pad bits."""
    return np.unpackbits(packed, axis=-1)[..., :length]


def popcount_bytes(packed: np.ndarray) -> np.ndarray:
    """Per-byte popcount via a 256-entry lookup table."""
    return _POPCOUNT_TABLE[packed]


def packed_popcount(packed: np.ndarray, axis: int = -1) -> np.ndarray:
    """Total number of set bits along ``axis`` of a packed array."""
    return popcount_bytes(packed).sum(axis=axis, dtype=np.int64)


class Bitstream:
    """A stochastic bitstream with a friendly value-level API.

    Wraps an array of 0/1 bits (time on the last axis).  Bitwise operators
    implement the single-gate SC primitives: ``&`` is unipolar
    multiplication, ``|`` is OR-based saturating accumulation, ``~`` is
    ``1 - v`` complement.

    >>> a = Bitstream.from_bits([1, 0, 1, 1])
    >>> a.value
    0.75
    """

    __slots__ = ("bits",)

    def __init__(self, bits: np.ndarray):
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size and bits.max() > 1:
            raise ValueError("bitstream entries must be 0 or 1")
        self.bits = bits

    @classmethod
    def from_bits(cls, bits) -> "Bitstream":
        return cls(np.asarray(bits, dtype=np.uint8))

    @classmethod
    def constant(cls, bit: int, length: int) -> "Bitstream":
        """All-zeros or all-ones stream (exactly represents 0.0 / 1.0)."""
        return cls(np.full(length, int(bool(bit)), dtype=np.uint8))

    @property
    def length(self) -> int:
        return self.bits.shape[-1]

    @property
    def value(self) -> float:
        """Decoded unipolar value: the density of ones."""
        return float(self.bits.mean(axis=-1)) if self.bits.ndim == 1 else None

    def values(self) -> np.ndarray:
        """Decoded unipolar values for a batch of streams."""
        return self.bits.mean(axis=-1)

    def popcount(self) -> int:
        return int(self.bits.sum(axis=-1)) if self.bits.ndim == 1 else None

    def __and__(self, other: "Bitstream") -> "Bitstream":
        return Bitstream(self.bits & other.bits)

    def __or__(self, other: "Bitstream") -> "Bitstream":
        return Bitstream(self.bits | other.bits)

    def __xor__(self, other: "Bitstream") -> "Bitstream":
        return Bitstream(self.bits ^ other.bits)

    def __invert__(self) -> "Bitstream":
        return Bitstream(1 - self.bits)

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other) -> bool:
        return isinstance(other, Bitstream) and np.array_equal(self.bits, other.bits)

    def __hash__(self):
        return hash((self.bits.tobytes(), self.bits.shape))

    def concat(self, other: "Bitstream") -> "Bitstream":
        """Temporal concatenation — the scaled-addition trick behind
        computation-skipping average pooling (paper Sec. II-C): the value
        of ``a.concat(b)`` is the length-weighted average of the inputs."""
        return Bitstream(np.concatenate([self.bits, other.bits], axis=-1))

    def packed(self) -> np.ndarray:
        return pack_stream(self.bits)

    def __repr__(self) -> str:
        if self.bits.ndim == 1 and self.length <= 32:
            s = "".join(str(b) for b in self.bits)
            return f"Bitstream({s!r}, value={self.value:.4f})"
        return f"Bitstream(shape={self.bits.shape})"


def scc(a: np.ndarray, b: np.ndarray) -> float:
    """Stochastic cross-correlation (Alaghi & Hayes) between two streams.

    SCC is 0 for independent streams, +1 for maximally overlapped
    (correlated) streams and -1 for maximally disjoint ones.  SC
    multiplication via AND is only exact at SCC = 0, which is why SNG
    lanes must be decorrelated.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[-1]
    pa = a.mean()
    pb = b.mean()
    pab = (a * b).mean()
    delta = pab - pa * pb
    if delta > 0:
        denom = min(pa, pb) - pa * pb
    else:
        denom = pa * pb - max(pa + pb - 1.0, 0.0)
    if denom <= 1.0 / (n * n) or denom <= 0:
        return 0.0
    return float(delta / denom)


def scc_matrix(streams: np.ndarray) -> np.ndarray:
    """Pairwise SCC matrix for a ``(k, n)`` batch of streams.

    The diagnostic behind SNG-bank design: off-diagonal magnitudes near
    zero certify that a shared-RNG lane assignment is safe for AND
    multiplication.
    """
    streams = np.asarray(streams)
    if streams.ndim != 2:
        raise ValueError("expected a (k, n) array of streams")
    k = streams.shape[0]
    out = np.empty((k, k))
    for i in range(k):
        out[i, i] = 1.0
        for j in range(i + 1, k):
            value = scc(streams[i], streams[j])
            out[i, j] = value
            out[j, i] = value
    return out
