"""Bitstream containers and packed-bit helpers.

A stochastic bitstream is a sequence of bits whose *density* (fraction of
ones) encodes a number.  Internally streams are numpy ``uint8`` arrays of
0/1 with time on the last axis; for bulk linear algebra the functional
simulator packs time steps into machine words — eight per byte
(``np.packbits``) for the reference byte path, and 64 per ``uint64``
word (:func:`pack_words`) for the production kernels — so AND/OR
reductions run on a fraction of the memory and one ALU op covers many
clocks.

This module is the single home of the popcount implementation: the
``np.bitwise_count`` fast path (numpy >= 2.0) and the 256-entry
table fallback live here and nowhere else; the simulator engine
re-exports :func:`packed_popcount` as ``popcount_packed``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Bitstream",
    "pack_stream",
    "unpack_stream",
    "pack_words",
    "words_from_bytes",
    "unpack_words",
    "popcount_bytes",
    "packed_popcount",
    "popcount_words",
    "scc",
    "scc_matrix",
]

_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint16
)


def pack_stream(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 array along its last axis into bytes (8 steps/byte)."""
    return np.packbits(bits.astype(np.uint8), axis=-1)


def unpack_stream(packed: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`pack_stream`; ``length`` trims pad bits."""
    return np.unpackbits(packed, axis=-1)[..., :length]


def words_from_bytes(packed: np.ndarray) -> np.ndarray:
    """Reinterpret byte-packed streams as ``uint64`` word-packed streams.

    Pads the last axis with zero bytes to a multiple of eight and views
    the result as ``uint64`` (64 clocks per word).  The word layout is
    *defined* as this view of the ``np.packbits`` byte layout, so the
    byte path and the word path always describe the same bit sequence
    and pad bits are always zero.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    n_bytes = packed.shape[-1]
    pad = (-n_bytes) % 8
    if pad:
        packed = np.concatenate(
            [packed,
             np.zeros(packed.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
        packed = np.ascontiguousarray(packed)
    return packed.view(np.uint64)


def pack_words(bits: np.ndarray) -> np.ndarray:
    """Pack a 0/1 array along its last axis into uint64 words.

    64 clocks per word; pad bits beyond the stream length are zero.
    """
    return words_from_bytes(np.packbits(bits.astype(np.uint8, copy=False),
                                        axis=-1))


def unpack_words(words: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`pack_words`; ``length`` trims pad bits."""
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    return np.unpackbits(as_bytes, axis=-1)[..., :length]


def popcount_bytes(packed: np.ndarray) -> np.ndarray:
    """Per-byte popcount (``np.bitwise_count`` when available, else a
    256-entry lookup table).  The ``hasattr`` check is at call time so
    tests can exercise the fallback by monkeypatching numpy."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(packed)
    return _POPCOUNT_TABLE[packed]


def packed_popcount(packed: np.ndarray, axis=-1) -> np.ndarray:
    """Total number of set bits along ``axis`` of a byte-packed array."""
    return popcount_bytes(packed).sum(axis=axis, dtype=np.int64)


def popcount_words(words: np.ndarray, axis=-1) -> np.ndarray:
    """Total number of set bits along ``axis`` of a word-packed array.

    ``axis`` may be an int or a tuple of ints (e.g. ``(-2, -1)`` for the
    APC accumulator's fan-in + time reduction).
    """
    if hasattr(np, "bitwise_count"):
        per_word = np.bitwise_count(words)
    else:  # numpy < 2.0: count the words one byte at a time.
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        per_word = _POPCOUNT_TABLE[as_bytes].reshape(
            words.shape + (8,)
        ).sum(axis=-1)
    return per_word.sum(axis=axis, dtype=np.int64)


class Bitstream:
    """A stochastic bitstream with a friendly value-level API.

    Wraps an array of 0/1 bits (time on the last axis).  Bitwise operators
    implement the single-gate SC primitives: ``&`` is unipolar
    multiplication, ``|`` is OR-based saturating accumulation, ``~`` is
    ``1 - v`` complement.

    >>> a = Bitstream.from_bits([1, 0, 1, 1])
    >>> a.value
    0.75
    """

    __slots__ = ("bits",)

    def __init__(self, bits: np.ndarray):
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.size and bits.max() > 1:
            raise ValueError("bitstream entries must be 0 or 1")
        self.bits = bits

    @classmethod
    def from_bits(cls, bits) -> "Bitstream":
        return cls(np.asarray(bits, dtype=np.uint8))

    @classmethod
    def constant(cls, bit: int, length: int) -> "Bitstream":
        """All-zeros or all-ones stream (exactly represents 0.0 / 1.0)."""
        return cls(np.full(length, int(bool(bit)), dtype=np.uint8))

    @property
    def length(self) -> int:
        return self.bits.shape[-1]

    @property
    def value(self) -> float:
        """Decoded unipolar value: the density of ones."""
        return float(self.bits.mean(axis=-1)) if self.bits.ndim == 1 else None

    def values(self) -> np.ndarray:
        """Decoded unipolar values for a batch of streams."""
        return self.bits.mean(axis=-1)

    def popcount(self) -> int:
        return int(self.bits.sum(axis=-1)) if self.bits.ndim == 1 else None

    def __and__(self, other: "Bitstream") -> "Bitstream":
        return Bitstream(self.bits & other.bits)

    def __or__(self, other: "Bitstream") -> "Bitstream":
        return Bitstream(self.bits | other.bits)

    def __xor__(self, other: "Bitstream") -> "Bitstream":
        return Bitstream(self.bits ^ other.bits)

    def __invert__(self) -> "Bitstream":
        return Bitstream(1 - self.bits)

    def __len__(self) -> int:
        return self.length

    def __eq__(self, other) -> bool:
        return isinstance(other, Bitstream) and np.array_equal(self.bits, other.bits)

    def __hash__(self):
        return hash((self.bits.tobytes(), self.bits.shape))

    def concat(self, other: "Bitstream") -> "Bitstream":
        """Temporal concatenation — the scaled-addition trick behind
        computation-skipping average pooling (paper Sec. II-C): the value
        of ``a.concat(b)`` is the length-weighted average of the inputs."""
        return Bitstream(np.concatenate([self.bits, other.bits], axis=-1))

    def packed(self) -> np.ndarray:
        return pack_stream(self.bits)

    def __repr__(self) -> str:
        if self.bits.ndim == 1 and self.length <= 32:
            s = "".join(str(b) for b in self.bits)
            return f"Bitstream({s!r}, value={self.value:.4f})"
        return f"Bitstream(shape={self.bits.shape})"


def scc(a: np.ndarray, b: np.ndarray) -> float:
    """Stochastic cross-correlation (Alaghi & Hayes) between two streams.

    SCC is 0 for independent streams, +1 for maximally overlapped
    (correlated) streams and -1 for maximally disjoint ones.  SC
    multiplication via AND is only exact at SCC = 0, which is why SNG
    lanes must be decorrelated.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[-1]
    pa = a.mean()
    pb = b.mean()
    pab = (a * b).mean()
    delta = pab - pa * pb
    if delta > 0:
        denom = min(pa, pb) - pa * pb
    else:
        denom = pa * pb - max(pa + pb - 1.0, 0.0)
    if denom <= 1.0 / (n * n) or denom <= 0:
        return 0.0
    return float(delta / denom)


def scc_matrix(streams: np.ndarray) -> np.ndarray:
    """Pairwise SCC matrix for a ``(k, n)`` batch of streams.

    The diagnostic behind SNG-bank design: off-diagonal magnitudes near
    zero certify that a shared-RNG lane assignment is safe for AND
    multiplication.

    Computed in one batched pass: all pair densities come from a single
    ``streams @ streams.T`` joint-density product and the numerator /
    denominator selection is applied matrix-wide.  Bit-for-bit the same
    values as the scalar :func:`scc` (the documented reference) applied
    to every pair.
    """
    streams = np.asarray(streams)
    if streams.ndim != 2:
        raise ValueError("expected a (k, n) array of streams")
    s = streams.astype(np.float64)
    k, n = s.shape
    p = s.mean(axis=-1)                      # per-stream densities
    pab = (s @ s.T) / n                      # joint densities, all pairs
    pi, pj = p[:, None], p[None, :]
    delta = pab - pi * pj
    # Positive-delta pairs normalize by the overlapped bound, negative
    # ones by the disjoint bound — same piecewise rule as scalar scc().
    denom = np.where(
        delta > 0,
        np.minimum(pi, pj) - pi * pj,
        pi * pj - np.maximum(pi + pj - 1.0, 0.0),
    )
    defined = denom > max(1.0 / (n * n), 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(defined, delta / np.where(defined, denom, 1.0), 0.0)
    np.fill_diagonal(out, 1.0)
    return out
