"""FSM-based stochastic activation functions.

The paper's Sec. II-A footnote: "Other activation functions require FSM
implementations [12, 15] and we do not explore them here."  They exist
in this reproduction so the trade-off is measurable: the classic
saturating-counter FSMs of Brown & Card, used by SC-DCNN [12] and HEIF
[15] for tanh/sigmoid nonlinearities, cost a counter per activation and
operate on *bipolar* streams — both reasons ACOUSTIC prefers its free
counter-side ReLU.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SaturatingCounterFsm", "StochasticTanh", "stanh_expected"]


class SaturatingCounterFsm:
    """A ``2K``-state saturating up/down counter driven by a bitstream.

    Each input 1 moves the state up, each 0 down, clamped to
    ``[0, 2K - 1]``.  The output bit is 1 while the state sits in the
    upper half.  This is the canonical SC FSM building block.
    """

    def __init__(self, half_states: int):
        if half_states < 1:
            raise ValueError("FSM needs at least one state per half")
        self.half_states = half_states

    @property
    def num_states(self) -> int:
        return 2 * self.half_states

    def run(self, stream: np.ndarray, initial_state: int = None) -> np.ndarray:
        """Transform one stream (time on the last axis, 1-D)."""
        stream = np.asarray(stream)
        if stream.ndim != 1:
            raise ValueError("run() processes a single 1-D stream")
        top = self.num_states - 1
        state = initial_state if initial_state is not None \
            else self.half_states  # mid-scale start
        out = np.empty_like(stream)
        for t, bit in enumerate(stream):
            state = min(top, state + 1) if bit else max(0, state - 1)
            out[t] = 1 if state >= self.half_states else 0
        return out

    def run_batch(self, streams: np.ndarray,
                  initial_state: int = None) -> np.ndarray:
        """Vectorized transform of ``(..., n)`` streams.

        The state recurrence is sequential in time but independent across
        streams, so the loop runs over time with numpy over the batch.
        """
        streams = np.asarray(streams)
        flat = streams.reshape(-1, streams.shape[-1])
        top = self.num_states - 1
        state = np.full(
            flat.shape[0],
            initial_state if initial_state is not None else self.half_states,
            dtype=np.int64,
        )
        out = np.empty_like(flat)
        for t in range(flat.shape[-1]):
            step = 2 * flat[:, t].astype(np.int64) - 1
            state = np.clip(state + step, 0, top)
            out[:, t] = state >= self.half_states
        return out.reshape(streams.shape)


class StochasticTanh:
    """Stanh: FSM-based stochastic hyperbolic tangent (Brown & Card).

    For a bipolar input stream encoding ``x``, a ``2K``-state saturating
    counter's output decodes approximately to ``tanh(K * x)`` (bipolar).
    SC-DCNN uses this as the network nonlinearity; ACOUSTIC avoids it —
    compare the per-activation FSM cost with ACOUSTIC's ReLU, which is a
    sign check on the already-present output counter.
    """

    def __init__(self, half_states: int = 4):
        self.fsm = SaturatingCounterFsm(half_states)
        self.half_states = half_states

    def apply(self, bipolar_streams: np.ndarray) -> np.ndarray:
        """Transform bipolar streams; output is again bipolar."""
        return self.fsm.run_batch(bipolar_streams)

    def expected(self, x: np.ndarray) -> np.ndarray:
        """Infinite-length expectation: ``tanh(half_states * x)``."""
        return stanh_expected(x, self.half_states)

    @staticmethod
    def area_cost_vs_relu() -> float:
        """Rough per-activation area multiplier vs ACOUSTIC's ReLU.

        The ReLU is a handful of gates on an existing counter; an
        FSM activation needs its own saturating counter and comparator —
        the "2X more expensive" class of overhead the paper avoids.
        """
        return 2.0


def stanh_expected(x: np.ndarray, half_states: int) -> np.ndarray:
    """Analytic Stanh response ``tanh(K * x)`` for bipolar value ``x``."""
    return np.tanh(half_states * np.asarray(x, dtype=np.float64))
