"""Single-gate stochastic arithmetic primitives.

Every operation here corresponds to one logic gate (or one small
structure) in the ACOUSTIC datapath:

- AND gate          -> unipolar multiplication
- XNOR gate         -> bipolar multiplication
- 2:1 / k:1 MUX     -> scaled (averaging) addition
- OR gate           -> scale-free saturating accumulation
- up/down counter   -> stream-to-binary conversion (+ ReLU)
- parallel counter  -> exact binary accumulation (APC baseline)

Streams are numpy uint8 arrays of 0/1 with time on the last axis; all
functions broadcast over leading axes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "and_multiply",
    "xnor_multiply",
    "mux_add",
    "mux_accumulate",
    "or_accumulate",
    "or_expected",
    "apc_accumulate",
    "up_down_counter",
    "counter_relu",
]


def _check_streams(*streams: np.ndarray) -> None:
    length = streams[0].shape[-1]
    for s in streams:
        if s.shape[-1] != length:
            raise ValueError("stream lengths must match")


def and_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Unipolar multiply: ``AND(a, b)`` has density ``va * vb`` when the
    operands are independent."""
    _check_streams(a, b)
    return a & b


def xnor_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bipolar multiply: ``XNOR(a, b)`` decodes to ``va * vb`` under the
    bipolar mapping.  Used only by the bipolar baseline comparisons."""
    _check_streams(a, b)
    return (1 - (a ^ b)).astype(np.uint8)


def mux_add(a: np.ndarray, b: np.ndarray, select: np.ndarray) -> np.ndarray:
    """Two-input scaled addition: ``s*va + (1-s)*vb`` where ``s`` is the
    density of the select stream (0.5 for plain averaging)."""
    _check_streams(a, b, select)
    return np.where(select.astype(bool), a, b).astype(np.uint8)


def mux_accumulate(streams: np.ndarray, rng: np.random.Generator = None,
                   axis: int = 0) -> np.ndarray:
    """k:1 MUX accumulation: pick one input uniformly at random per clock.

    Decodes to ``mean(v_i)`` — i.e. ``sum(v_i) / k`` — which is the
    *scaling* that degrades wide accumulations in prior SC accelerators
    and motivates OR accumulation (paper Sec. II-B).
    """
    streams = np.asarray(streams)
    k = streams.shape[axis]
    length = streams.shape[-1]
    if rng is None:
        rng = np.random.default_rng(0)
    moved = np.moveaxis(streams, axis, 0)
    select = rng.integers(0, k, size=length)
    return np.take_along_axis(
        moved, select[(None,) * (moved.ndim - 1)].astype(np.int64), axis=0
    )[0].astype(np.uint8)


def or_accumulate(streams: np.ndarray, axis: int = 0) -> np.ndarray:
    """Scale-free saturating accumulation: bitwise OR across ``axis``.

    For independent unipolar inputs the result density is
    ``1 - prod(1 - v_i)`` — approximately ``sum(v_i)`` when the inputs
    are small, saturating smoothly at 1.  This is the paper's core
    accumulation primitive (Sec. II-B).
    """
    streams = np.asarray(streams)
    return np.bitwise_or.reduce(streams, axis=axis).astype(np.uint8)


def or_expected(values: np.ndarray, axis: int = 0) -> np.ndarray:
    """Analytic expectation of OR accumulation: ``1 - prod(1 - v_i)``."""
    values = np.asarray(values, dtype=np.float64)
    return 1.0 - np.prod(1.0 - values, axis=axis)


def apc_accumulate(streams: np.ndarray, axis: int = 0) -> np.ndarray:
    """Accurate parallel counter: exact per-clock popcount across inputs.

    Produces a binary (integer) partial-sum sequence, the approach of
    SC-DCNN [12].  Exact but costs a full adder tree per MAC — the area
    the paper's OR gate eliminates (4.2x smaller for 128-wide).
    """
    streams = np.asarray(streams)
    return streams.sum(axis=axis, dtype=np.int64)


def up_down_counter(pos: np.ndarray, neg: np.ndarray) -> np.ndarray:
    """Two-phase output counter: counts up during the positive phase and
    down during the negative phase (Fig. 1 of the paper).

    Returns the signed integer count ``popcount(pos) - popcount(neg)``
    broadcast over leading axes.  Dividing by the per-phase stream length
    recovers the signed value estimate.
    """
    _check_streams(pos, neg)
    up = np.asarray(pos).sum(axis=-1, dtype=np.int64)
    down = np.asarray(neg).sum(axis=-1, dtype=np.int64)
    return up - down


def counter_relu(counts: np.ndarray) -> np.ndarray:
    """ReLU on counter outputs.

    The counter value is fixed-point binary, so ReLU "is easily
    implemented as a bitwise AND of the inverted sign with every other
    bit" (paper Sec. II-A) — i.e. negative counts clamp to zero.
    """
    counts = np.asarray(counts)
    return np.maximum(counts, 0)
