"""Stochastic pooling, including computation-skipping average pooling.

Paper Sec. II-C: average pooling in SC is a MUX (scaled addition) over the
pooling window.  ACOUSTIC's observation is that the MUX select sequence
need not be random — since which input the MUX "chooses" at each clock is
known a priori, the *unchosen* bits never need to be computed.  Skipping
them shortens every contributing convolution pass by the window size
(4x for 2x2, 9x for 3x3), and the surviving bits are simply
*concatenated*: a concatenation of k independent streams of length n/k
decodes to the average of the k values.

The cost is output correlation, which ACOUSTIC removes for free because
every layer boundary converts to binary and regenerates fresh streams.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mux_average_pool",
    "skipped_average_pool",
    "skip_factor",
    "concat_pool_counter",
    "StochasticMaxPoolFsm",
]


def mux_average_pool(streams: np.ndarray, rng: np.random.Generator = None,
                     axis: int = 0) -> np.ndarray:
    """Reference MUX-based average pooling over ``axis``.

    Every input stream must be full length; the select picks one input
    uniformly per clock.  Decodes to ``mean(v_i)`` but computes (and then
    discards) ``(k-1)/k`` of the input bits — the waste computation
    skipping removes.
    """
    streams = np.asarray(streams)
    k = streams.shape[axis]
    if rng is None:
        rng = np.random.default_rng(0)
    moved = np.moveaxis(streams, axis, 0)
    select = rng.integers(0, k, size=streams.shape[-1])
    idx = select[(None,) * (moved.ndim - 1)].astype(np.int64)
    return np.take_along_axis(moved, idx, axis=0)[0].astype(np.uint8)


def skipped_average_pool(short_streams: np.ndarray, axis: int = 0) -> np.ndarray:
    """Computation-skipping average pooling: concatenate short streams.

    ``short_streams`` holds the k window inputs along ``axis``, each
    generated at length ``n/k`` (the convolution pass that produced them
    was cut short by the same factor).  The output is the length-n
    concatenation, whose density is exactly the window average of the
    input densities.
    """
    streams = np.moveaxis(np.asarray(short_streams), axis, -2)
    # (..., k, n/k) -> (..., k * n/k): window inputs laid out back-to-back.
    return streams.reshape(streams.shape[:-2] + (-1,)).astype(np.uint8)


def skip_factor(pool_height: int, pool_width: int) -> int:
    """Latency/energy reduction on the preceding conv layer (4x..9x)."""
    if pool_height < 1 or pool_width < 1:
        raise ValueError("pooling window must be at least 1x1")
    return pool_height * pool_width


def concat_pool_counter(window_counts: np.ndarray, axis: int = 0) -> np.ndarray:
    """Counter-level view of computation skipping.

    In hardware, pooling across output *height* shortens compute passes
    and simply does not reset the output counter between them; pooling
    across output *width* adds a small parallel counter that merges
    adjacent outputs.  Either way the counter accumulates the window's
    per-pass counts.  Dividing by the *full* stream length then yields
    the window average (each pass contributed only ``n/k`` clocks).
    """
    window_counts = np.asarray(window_counts)
    return window_counts.sum(axis=axis)


class StochasticMaxPoolFsm:
    """FSM-based stochastic max pooling (the baseline ACOUSTIC avoids).

    Follows the standard scheme of SC-DCNN [12]/[23]: per input, a
    saturating counter tracks an estimate of which stream is currently
    the largest; each clock the output forwards the bit of the current
    winner.  It needs a counter per input and comparator logic, which is
    why the paper calls it "2X more expensive in area/power than average
    pooling" and replaces it.
    """

    def __init__(self, counter_bits: int = 4):
        self.counter_bits = counter_bits

    def pool(self, streams: np.ndarray) -> np.ndarray:
        """Pool k streams of shape ``(k, n)`` into one ``(n,)`` stream."""
        streams = np.asarray(streams, dtype=np.int64)
        if streams.ndim != 2:
            raise ValueError("expected (k, n) array of streams")
        k, n = streams.shape
        limit = (1 << self.counter_bits) - 1
        counters = np.zeros(k, dtype=np.int64)
        out = np.empty(n, dtype=np.uint8)
        for t in range(n):
            bits = streams[:, t]
            counters = np.clip(counters + 2 * bits - 1, 0, limit)
            winner = int(np.argmax(counters))
            out[t] = bits[winner]
        return out

    @staticmethod
    def area_multiplier() -> float:
        """Area/power cost relative to average pooling (paper: ~2x)."""
        return 2.0
