"""Stochastic number representations: unipolar, bipolar, split-unipolar.

The paper's first optimization (Sec. II-A) is the *split-unipolar*
representation: a signed value is carried as two unipolar streams, one for
the positive component and one for the negative, and processed temporally
in two phases on the same MAC hardware.  Unipolar streams need >= 2x
shorter lengths than bipolar for the same RMS error, which directly
shortens inference latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sng import StochasticNumberGenerator

__all__ = [
    "UnipolarCodec",
    "BipolarCodec",
    "SplitUnipolarValue",
    "split_value",
    "merge_split",
    "SplitUnipolarCodec",
]


class UnipolarCodec:
    """Encode/decode values in [0, 1] as bit density.

    ``P(bit = 1) = v``; decoding is the mean of the stream.
    """

    vmin, vmax = 0.0, 1.0

    def __init__(self, sng: StochasticNumberGenerator):
        self.sng = sng

    def encode(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.size and (values.min() < 0 or values.max() > 1):
            raise ValueError("unipolar values must lie in [0, 1]")
        return self.sng.generate(values)

    @staticmethod
    def decode(streams: np.ndarray) -> np.ndarray:
        return np.asarray(streams, dtype=np.float64).mean(axis=-1)


class BipolarCodec:
    """Encode/decode values in [-1, 1]: ``P(bit = 1) = (v + 1) / 2``.

    The common choice in prior SC accelerators (SC-DCNN, HEIF, SCOPE)
    because it carries signed weights directly; the price is 2x+ longer
    streams for the same error (see :mod:`repro.core.errors`).
    """

    vmin, vmax = -1.0, 1.0

    def __init__(self, sng: StochasticNumberGenerator):
        self.sng = sng

    def encode(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.size and (values.min() < -1 or values.max() > 1):
            raise ValueError("bipolar values must lie in [-1, 1]")
        return self.sng.generate((values + 1.0) / 2.0)

    @staticmethod
    def decode(streams: np.ndarray) -> np.ndarray:
        return 2.0 * np.asarray(streams, dtype=np.float64).mean(axis=-1) - 1.0


@dataclass
class SplitUnipolarValue:
    """A signed value split into non-negative (pos, neg) components.

    Exactly one of the two components is non-zero for any scalar input
    (``v = pos - neg``), mirroring the paper's "for a positive weight
    value, its corresponding negative stream is 0, and vice-versa".
    """

    pos: np.ndarray
    neg: np.ndarray

    def value(self) -> np.ndarray:
        return self.pos - self.neg


def split_value(values: np.ndarray) -> SplitUnipolarValue:
    """Split signed values in [-1, 1] into (positive, negative) parts."""
    values = np.asarray(values, dtype=np.float64)
    if values.size and (np.abs(values).max() > 1):
        raise ValueError("split-unipolar values must lie in [-1, 1]")
    return SplitUnipolarValue(
        pos=np.maximum(values, 0.0), neg=np.maximum(-values, 0.0)
    )


def merge_split(pos: np.ndarray, neg: np.ndarray) -> np.ndarray:
    """Recombine split components into a signed value."""
    return np.asarray(pos, dtype=np.float64) - np.asarray(neg, dtype=np.float64)


class SplitUnipolarCodec:
    """Encode signed values as a pair of unipolar streams.

    In ACOUSTIC the two components are processed *temporally*: the same
    MAC array runs a positive phase (up-counting) and a negative phase
    (down-counting), so "256-long stream" in the paper means 2 x 128.
    ``phase_length`` here is the per-phase length (128 for the LP/ULP
    configurations).
    """

    vmin, vmax = -1.0, 1.0

    def __init__(self, sng: StochasticNumberGenerator):
        self.sng = sng

    @property
    def phase_length(self) -> int:
        return self.sng.length

    @property
    def total_length(self) -> int:
        """Effective stream length in the paper's accounting (2 phases)."""
        return 2 * self.sng.length

    def encode(self, values: np.ndarray) -> SplitUnipolarValue:
        parts = split_value(values)
        return SplitUnipolarValue(
            pos=self.sng.generate(parts.pos),
            neg=self.sng.generate(parts.neg),
        )

    @staticmethod
    def decode(streams: SplitUnipolarValue) -> np.ndarray:
        pos = np.asarray(streams.pos, dtype=np.float64).mean(axis=-1)
        neg = np.asarray(streams.neg, dtype=np.float64).mean(axis=-1)
        return pos - neg
