"""Split-unipolar two-phase multiply-accumulate unit (paper Fig. 1).

The circuit processes signed weights on unsigned (unipolar) hardware by
running two temporal phases over the same AND/OR datapath:

- **positive phase**: weights with negative sign are gated to zero, the
  surviving products accumulate, and the output counter counts *up*;
- **negative phase**: the sign mask is inverted, only negative-weight
  products flow, and the counter counts *down*.

The counter ends at ``popcount(+phase) - popcount(-phase)``, a signed
fixed-point binary value, on which ReLU is a trivial sign check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .accumulate import make_accumulator
from .ops import and_multiply, counter_relu
from .sng import StochasticNumberGenerator

__all__ = ["MacTrace", "MacResult", "SplitUnipolarMac"]


@dataclass
class MacTrace:
    """Bit-level record of one MAC evaluation, for inspection/teaching.

    All arrays have shape ``(fan_in, phase_length)`` except the
    accumulated streams, which are ``(phase_length,)``.
    """

    activation_streams: np.ndarray
    weight_pos_streams: np.ndarray
    weight_neg_streams: np.ndarray
    product_pos_streams: np.ndarray
    product_neg_streams: np.ndarray
    accum_pos_stream: np.ndarray = field(default=None)
    accum_neg_stream: np.ndarray = field(default=None)


@dataclass
class MacResult:
    """Outcome of one split-unipolar MAC evaluation."""

    #: Signed up/down counter value (up-phase popcount minus down-phase).
    counter: int
    #: Counter normalized by per-phase length: the raw signed density.
    raw_value: float
    #: Accumulator-decoded signed estimate.  For OR this equals
    #: ``raw_value`` (the hardware counter IS the output; the OR
    #: saturation is absorbed by training); for MUX/APC the decode
    #: rescales to sum units.
    estimate: float
    #: Estimate after the counter-side ReLU.
    relu_estimate: float
    #: Bit-level trace (present when ``record_trace=True``).
    trace: MacTrace = None


class SplitUnipolarMac:
    """A fan-in-``k`` stochastic MAC with two-phase sign handling.

    Parameters
    ----------
    length:
        Per-phase stream length (the paper's "256-long" = 2 x 128, so
        ``length=128`` reproduces the LP/ULP configurations).
    bits:
        SNG comparator resolution (8 everywhere in the paper).
    scheme:
        RNG scheme for the SNG banks (``"lfsr"``/``"random"``/``"vdc"``).
    accumulator:
        ``"or"`` (ACOUSTIC), ``"mux"`` or ``"apc"`` (baselines).
    seed:
        Decorrelates the activation and weight SNG banks internally.
    """

    def __init__(self, length: int = 128, bits: int = 8, scheme: str = "lfsr",
                 accumulator: str = "or", seed: int = 1):
        self.length = length
        self.bits = bits
        self.accumulator = make_accumulator(accumulator, seed=seed)
        # Distinct seed spaces keep activation and weight lanes independent.
        self.act_sng = StochasticNumberGenerator(
            length, bits=bits, scheme=scheme, seed=seed
        )
        self.wgt_sng = StochasticNumberGenerator(
            length, bits=bits, scheme=scheme, seed=seed + 7919
        )

    def compute(self, activations: np.ndarray, weights: np.ndarray,
                record_trace: bool = False) -> MacResult:
        """Evaluate ``sum_i activations[i] * weights[i]``.

        ``activations`` must be non-negative (they follow a ReLU in the
        network); ``weights`` are signed in [-1, 1].
        """
        activations = np.asarray(activations, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if activations.shape != weights.shape or activations.ndim != 1:
            raise ValueError("activations and weights must be matching 1-D arrays")
        if activations.size and activations.min() < 0:
            raise ValueError("split-unipolar activations must be non-negative")
        if activations.size and (activations.max() > 1 or np.abs(weights).max() > 1):
            raise ValueError("inputs must be normalized to [-1, 1]")

        act_streams = self.act_sng.generate(activations)
        # Phase gating: the sign bit masks the weight SNG output, so a
        # positive weight contributes only in phase + and vice versa.
        wgt_pos = self.wgt_sng.generate(np.maximum(weights, 0.0))
        wgt_neg = self.wgt_sng.generate(np.maximum(-weights, 0.0))

        prod_pos = and_multiply(act_streams, wgt_pos)
        prod_neg = and_multiply(act_streams, wgt_neg)
        acc_pos = self.accumulator.reduce_streams(prod_pos, axis=0)
        acc_neg = self.accumulator.reduce_streams(prod_neg, axis=0)

        fan_in = activations.size
        if self.accumulator.name == "apc":
            # APC emits integer partial sums; the counter integrates them.
            count_up = int(acc_pos.sum())
            count_down = int(acc_neg.sum())
        else:
            count_up = int(np.asarray(acc_pos).sum())
            count_down = int(np.asarray(acc_neg).sum())
        counter = count_up - count_down
        raw_value = counter / self.length

        est_pos = float(self.accumulator.decode(acc_pos, fan_in))
        est_neg = float(self.accumulator.decode(acc_neg, fan_in))
        estimate = est_pos - est_neg

        trace = None
        if record_trace:
            trace = MacTrace(
                activation_streams=act_streams,
                weight_pos_streams=wgt_pos,
                weight_neg_streams=wgt_neg,
                product_pos_streams=prod_pos,
                product_neg_streams=prod_neg,
                accum_pos_stream=acc_pos,
                accum_neg_stream=acc_neg,
            )
        return MacResult(
            counter=counter,
            raw_value=raw_value,
            estimate=estimate,
            relu_estimate=float(counter_relu(np.asarray(estimate))),
            trace=trace,
        )

    def expected(self, activations: np.ndarray, weights: np.ndarray) -> float:
        """Infinite-stream-length expectation under this accumulator.

        For OR accumulation this includes the systematic saturation
        ``1 - prod(1 - a_i * w_i)`` per sign phase — the quantity the
        training-side OR model (Sec. II-D) must reproduce.
        """
        activations = np.asarray(activations, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        pos = float(self.accumulator.expected(activations * np.maximum(weights, 0.0)))
        neg = float(self.accumulator.expected(activations * np.maximum(-weights, 0.0)))
        return pos - neg
