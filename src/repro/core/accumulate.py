"""Wide-accumulation strategies and their accuracy/area trade-offs.

Deep CNN layers reduce thousands of products at once (a 3x3x256 kernel is
a 2304-wide accumulation).  This module packages the three contenders the
paper compares as interchangeable accumulator objects so the functional
simulator and the Monte-Carlo study (Sec. II-B) can swap them:

========  ========================  ===========================
 name      decode model              hardware cost (per paper)
========  ========================  ===========================
 OR        1 - prod(1 - v_i)         1 OR gate / input (baseline = 1x)
 MUX       mean(v_i)  (scaled!)      k:1 mux + select RNG
 APC       exact sum                 4.2x OR area at 128-wide [12];
                                     23.8x for per-product conversion [21]
========  ========================  ===========================
"""

from __future__ import annotations

import numpy as np

from . import ops

__all__ = [
    "OrAccumulator",
    "MuxAccumulator",
    "ApcAccumulator",
    "make_accumulator",
    "RELATIVE_AREA",
]

#: Relative MAC-structure area at 128-wide accumulation, normalized to OR
#: (paper Sec. II-B: OR is "4.2x [smaller] than [12] and 23.8X than [21]").
RELATIVE_AREA = {"or": 1.0, "apc": 4.2, "binary-convert": 23.8, "mux": 1.4}


class OrAccumulator:
    """Scale-free saturating OR accumulation (the ACOUSTIC choice)."""

    name = "or"
    scaled = False

    def reduce_streams(self, streams: np.ndarray, axis: int = 0) -> np.ndarray:
        """Accumulate product streams into one stream along ``axis``."""
        return ops.or_accumulate(streams, axis=axis)

    def decode(self, stream: np.ndarray, fan_in: int) -> np.ndarray:
        """Decode the accumulated stream exactly as the hardware counter
        does: the density of ones.

        The result estimates ``1 - prod(1 - v_i)`` (see :meth:`expected`)
        — the systematic saturation is *not* inverted here because
        ACOUSTIC absorbs it into training (Sec. II-D).  Use
        :meth:`linearize` to map a density back to a sum estimate when a
        sum-scale quantity is needed.
        """
        return np.asarray(stream, dtype=np.float64).mean(axis=-1)

    @staticmethod
    def linearize(density: np.ndarray) -> np.ndarray:
        """Invert the small-value OR model ``y ~ 1 - exp(-s)``:
        ``s = -log(1 - y)``."""
        y = np.clip(np.asarray(density, dtype=np.float64), 0.0, 1.0 - 1e-12)
        return -np.log1p(-y)

    def expected(self, values: np.ndarray, axis: int = 0) -> np.ndarray:
        return ops.or_expected(values, axis=axis)


class MuxAccumulator:
    """Scaled MUX accumulation (prior-work behaviour, for comparison)."""

    name = "mux"
    scaled = True

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def reduce_streams(self, streams: np.ndarray, axis: int = 0) -> np.ndarray:
        return ops.mux_accumulate(streams, rng=self._rng, axis=axis)

    def decode(self, stream: np.ndarray, fan_in: int) -> np.ndarray:
        """Undo the 1/k scaling to recover the sum estimate."""
        return np.asarray(stream, dtype=np.float64).mean(axis=-1) * fan_in

    def expected(self, values: np.ndarray, axis: int = 0) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return values.sum(axis=axis)


class ApcAccumulator:
    """Accurate-parallel-counter accumulation (exact, expensive)."""

    name = "apc"
    scaled = False

    def reduce_streams(self, streams: np.ndarray, axis: int = 0) -> np.ndarray:
        return ops.apc_accumulate(streams, axis=axis)

    def decode(self, counts: np.ndarray, fan_in: int) -> np.ndarray:
        return np.asarray(counts, dtype=np.float64).mean(axis=-1)

    def expected(self, values: np.ndarray, axis: int = 0) -> np.ndarray:
        return np.asarray(values, dtype=np.float64).sum(axis=axis)


def make_accumulator(name: str, seed: int = 0):
    """Construct an accumulator by name (``"or"``, ``"mux"``, ``"apc"``)."""
    name = name.lower()
    if name == "or":
        return OrAccumulator()
    if name == "mux":
        return MuxAccumulator(seed=seed)
    if name == "apc":
        return ApcAccumulator()
    raise ValueError(f"unknown accumulator: {name!r}")
