#!/usr/bin/env python
"""Import-layering check for the graph IR.

``repro.ir`` is the bottom layer of the package: every subsystem
(training, simulator, arch, runtime, networks) consumes it, so it must
not import from any of them — a cycle there would make the IR
un-importable in isolation and let subsystem concepts leak downward.

Walks every module under ``src/repro/ir`` with the ``ast`` module (no
imports are executed) and fails with a non-zero exit code listing each
violating import.  Run from the repository root:

    python scripts/check_layering.py
"""

from __future__ import annotations

import ast
import pathlib
import sys

#: Subsystems the IR must never import from.
FORBIDDEN = ("training", "simulator", "arch", "runtime", "networks",
             "analysis", "baselines", "core", "datasets")

IR_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src/repro/ir"


def _forbidden_target(module: str, level: int, path: pathlib.Path) -> str:
    """Return the offending subsystem name, or '' if the import is fine."""
    if level == 0:
        # Absolute import: repro.<subsystem>... is the only repro form.
        parts = module.split(".")
        if parts[0] == "repro" and len(parts) > 1 and parts[1] in FORBIDDEN:
            return parts[1]
        return ""
    # Relative import: level 1 stays inside repro.ir; level >= 2 reaches
    # repro.<module> (e.g. ``from ..training import ...``).
    if level >= 2 and module:
        head = module.split(".")[0]
        if head in FORBIDDEN:
            return head
    return ""


def check(root: pathlib.Path = IR_ROOT) -> list:
    violations = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bad = _forbidden_target(alias.name, 0, path)
                    if bad:
                        violations.append(
                            f"{path}:{node.lineno}: imports repro.{bad} "
                            f"(via 'import {alias.name}')")
            elif isinstance(node, ast.ImportFrom):
                bad = _forbidden_target(node.module or "", node.level, path)
                if bad:
                    dots = "." * node.level
                    violations.append(
                        f"{path}:{node.lineno}: imports repro.{bad} "
                        f"(via 'from {dots}{node.module or ''} import ...')")
    return violations


def main() -> int:
    violations = check()
    if violations:
        print("repro.ir must not import from the subsystems above it:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print("layering OK: repro.ir imports nothing from the upper layers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
