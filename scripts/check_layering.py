#!/usr/bin/env python
"""Import-layering check for the bottom-layer packages.

``repro.ir`` and ``repro.obs`` are the bottom layers of the package:
every subsystem (training, simulator, arch, runtime, networks) consumes
them, so they must not import from any of those — a cycle there would
make the bottom layers un-importable in isolation and let subsystem
concepts leak downward.  The two bottom layers are also independent of
each other.

One sanctioned exception: ``repro.ir.passes`` (the lowering pipeline)
may import ``repro.obs`` for its per-pass tracing spans — it is listed
in :data:`EXCEPTIONS` and nothing else gets a waiver.

``repro.serve`` sits at the *top* of the stack: it orchestrates the
runtime, networks and obs layers to serve traffic, and nothing below it
may import it (the CLI, which wires every subsystem to argv, is the one
sanctioned consumer — see :data:`TOP_LAYERS`).  A lower layer importing
serve would invert the dependency and make the core library drag the
serving machinery into every import.

The check also scans the whole package for re-imports of the retired
private lowering helpers (:data:`DEPRECATED_LOWERING_HELPERS`): the
conv+pool fusion decision lives only in ``repro.ir.passes`` now, and no
subsystem may route around the pipeline by importing the deprecated
shims.

Walks every module under each bottom-layer root with the ``ast`` module
(no imports are executed) and fails with a non-zero exit code listing
each violating import.  Run from the repository root:

    python scripts/check_layering.py
"""

from __future__ import annotations

import ast
import pathlib
import sys

_SUBSYSTEMS = ("training", "simulator", "arch", "runtime", "networks",
               "analysis", "baselines", "core", "datasets")

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src/repro"

#: Bottom-layer root -> subsystems it must never import from.
BOTTOM_LAYERS = {
    _SRC / "ir": _SUBSYSTEMS + ("obs",),
    _SRC / "obs": _SUBSYSTEMS + ("ir",),
}

#: Per-file waivers: module path -> names dropped from its forbidden
#: set.  The pass pipeline may use repro.obs for per-pass spans.
EXCEPTIONS = {
    _SRC / "ir" / "passes.py": ("obs",),
}

#: Top-layer package name -> files allowed to import it.  Everything
#: else under src/repro (outside the package itself) must not.
TOP_LAYERS = {
    "serve": (_SRC / "cli.py",),
}

#: Retired private lowering entry points: kept as deprecation shims in
#: their home module, but no other module may import them — all
#: lowering goes through repro.ir.passes.
DEPRECATED_LOWERING_HELPERS = {
    "_lower_nodes": _SRC / "simulator" / "network.py",
}

# Historical single-root spellings, kept for check()'s callers/tests.
FORBIDDEN = _SUBSYSTEMS
IR_ROOT = _SRC / "ir"


def _forbidden_target(module: str, level: int, forbidden: tuple) -> str:
    """Return the offending subsystem name, or '' if the import is fine."""
    if level == 0:
        # Absolute import: repro.<subsystem>... is the only repro form.
        parts = module.split(".")
        if parts[0] == "repro" and len(parts) > 1 and parts[1] in forbidden:
            return parts[1]
        return ""
    # Relative import: level 1 stays inside the bottom-layer package;
    # level >= 2 reaches repro.<module> (e.g. ``from ..training import``).
    if level >= 2 and module:
        head = module.split(".")[0]
        if head in forbidden:
            return head
    return ""


def check(root: pathlib.Path = IR_ROOT, forbidden: tuple = None) -> list:
    if forbidden is None:
        forbidden = BOTTOM_LAYERS.get(root, FORBIDDEN)
    violations = []
    for path in sorted(root.rglob("*.py")):
        allowed = EXCEPTIONS.get(path, ())
        effective = tuple(n for n in forbidden if n not in allowed)
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bad = _forbidden_target(alias.name, 0, effective)
                    if bad:
                        violations.append(
                            f"{path}:{node.lineno}: imports repro.{bad} "
                            f"(via 'import {alias.name}')")
            elif isinstance(node, ast.ImportFrom):
                bad = _forbidden_target(node.module or "", node.level,
                                        effective)
                if bad:
                    dots = "." * node.level
                    violations.append(
                        f"{path}:{node.lineno}: imports repro.{bad} "
                        f"(via 'from {dots}{node.module or ''} import ...')")
    return violations


def check_top_layers(root: pathlib.Path = _SRC) -> list:
    """Flag imports of a top-layer package from anywhere below it."""
    violations = []
    for path in sorted(root.rglob("*.py")):
        for package, allowed in TOP_LAYERS.items():
            if path in allowed or (root / package) in path.parents:
                continue
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                bad = ""
                if isinstance(node, ast.Import):
                    if any(_forbidden_target(a.name, 0, (package,))
                           for a in node.names):
                        bad = package
                elif isinstance(node, ast.ImportFrom):
                    bad = _forbidden_target(node.module or "", node.level,
                                            (package,))
                    # ``from .serve import ...`` / ``from . import serve``
                    # in a module that sits directly under src/repro.
                    if not bad and node.level == 1 and path.parent == root:
                        head = (node.module or "").split(".")[0]
                        names = [a.name for a in node.names]
                        if head == package or (not node.module
                                               and package in names):
                            bad = package
                if bad:
                    violations.append(
                        f"{path}:{node.lineno}: imports repro.{bad} — the "
                        f"serving layer sits on top; only the CLI may "
                        f"import it")
    return violations


def check_deprecated_helpers(root: pathlib.Path = _SRC) -> list:
    """Flag imports of retired lowering helpers outside their home
    module (where only the deprecation shim itself may live)."""
    violations = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            for alias in node.names:
                home = DEPRECATED_LOWERING_HELPERS.get(alias.name)
                if home is not None and path != home:
                    violations.append(
                        f"{path}:{node.lineno}: imports deprecated "
                        f"lowering helper {alias.name!r} — lower through "
                        "repro.ir.passes instead")
    return violations


#: AlexNet perfsim goldens captured immediately before the grouped-conv
#: lowering landed: the refactor threads ``groups`` through the IR and
#: kernels but must not move a single perf-model number.  Values are
#: compared bit-equal (``==`` on floats) — any drift means the lowering
#: changed the cost arithmetic, not just the plumbing.
ALEXNET_PERFSIM_GOLDEN = {
    "lp": {
        "total_cycles": 1027003.546875,
        "compute_cycles": 209040.0,
        "energy_j": 0.0003067073153124273,
        "dram_bytes": 61110243.0,
    },
    "ulp": {
        "total_cycles": 6576415.0,
        "compute_cycles": 6576584.0,
        "energy_j": 0.00023968621158128246,
        "dram_bytes": 0.0,
    },
}


def check_perfsim_goldens() -> list:
    """AlexNet LP/ULP perfsim results must be bit-equal to the values
    captured before grouped-conv lowering (golden-equivalence guard)."""
    sys.path.insert(0, str(_SRC.parent))
    try:
        from repro.arch import LP_CONFIG, ULP_CONFIG, simulate_network
        from repro.networks.zoo import NETWORK_SPECS
    except Exception as exc:   # import failure is itself a violation
        return [f"cannot import repro for the perfsim golden check: {exc}"]
    violations = []
    configs = {"lp": LP_CONFIG, "ulp": ULP_CONFIG}
    for name, golden in ALEXNET_PERFSIM_GOLDEN.items():
        result = simulate_network(NETWORK_SPECS["alexnet"](), configs[name])
        for field, want in golden.items():
            got = getattr(result, field)
            if got != want:
                violations.append(
                    f"alexnet {name} {field}: got {got!r}, golden {want!r}")
    return violations


def main() -> int:
    violations = []
    for root, forbidden in BOTTOM_LAYERS.items():
        violations.extend(check(root, forbidden))
    if violations:
        print("bottom layers must not import from the subsystems above:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    top = check_top_layers()
    if top:
        print("lower layers must not import the serving layer:")
        for violation in top:
            print(f"  {violation}")
        return 1
    deprecated = check_deprecated_helpers()
    if deprecated:
        print("deprecated lowering helpers must not be re-imported:")
        for violation in deprecated:
            print(f"  {violation}")
        return 1
    goldens = check_perfsim_goldens()
    if goldens:
        print("perfsim goldens drifted from the pre-grouped-lowering "
              "values:")
        for violation in goldens:
            print(f"  {violation}")
        return 1
    print("layering OK: repro.ir and repro.obs import nothing from the "
          "upper layers (sole waiver: repro.ir.passes -> repro.obs), "
          "repro.serve is imported only by the CLI, no module re-imports "
          "the deprecated lowering helpers, and the AlexNet perfsim "
          "goldens are bit-equal to their pre-grouped-lowering values")
    return 0


if __name__ == "__main__":
    sys.exit(main())
